package core

import (
	"fmt"
	"strconv"

	"excovery/internal/eventlog"
	"excovery/internal/fault"
	"excovery/internal/netem"
	"excovery/internal/sched"
)

// EnvExec executes environment manipulation actions on the emulated
// platform (§IV-D2): the traffic generator of Fig. 7 and drop-all. It
// implements master.EnvExecutor.
type EnvExec struct {
	s        *sched.Scheduler
	nw       *netem.Network
	actorIDs []string
	envIDs   []string
	emit     func(typ string, params map[string]string)

	traffic *fault.Traffic
	dropAll *fault.DropAll
}

// NewEnvExec builds the environment executor. emit receives the
// start/stop events the manipulation actions generate (§IV-D3).
func NewEnvExec(s *sched.Scheduler, nw *netem.Network, actorIDs, envIDs []string,
	emit func(typ string, params map[string]string)) *EnvExec {
	if emit == nil {
		emit = func(string, map[string]string) {}
	}
	return &EnvExec{s: s, nw: nw, actorIDs: actorIDs, envIDs: envIDs, emit: emit}
}

// Traffic returns the running traffic generator, if any.
func (e *EnvExec) Traffic() *fault.Traffic { return e.traffic }

// Execute implements the environment action vocabulary.
func (e *EnvExec) Execute(action string, params map[string]string) error {
	switch action {
	case eventlog.EvEnvTrafficStart:
		return e.trafficStart(params)
	case eventlog.EvEnvTrafficStop:
		if e.traffic != nil {
			e.traffic.Stop()
			e.traffic = nil
			e.emit(eventlog.EvEnvTrafficStop, nil)
		}
		return nil
	case eventlog.EvEnvDropAllStart:
		if e.dropAll == nil {
			proto := params["proto"]
			if proto == "" {
				proto = "sd"
			}
			e.dropAll = fault.NewDropAll(e.nw, proto)
		}
		e.dropAll.Start()
		e.emit(eventlog.EvEnvDropAllStart, nil)
		return nil
	case eventlog.EvEnvDropAllStop:
		if e.dropAll != nil {
			e.dropAll.Stop()
			e.emit(eventlog.EvEnvDropAllStop, nil)
		}
		return nil
	default:
		return fmt.Errorf("core: unknown environment action %q", action)
	}
}

func (e *EnvExec) trafficStart(params map[string]string) error {
	if e.traffic != nil {
		e.traffic.Stop()
		e.traffic = nil
	}
	bw, err := strconv.Atoi(params["bw"])
	if err != nil {
		return fmt.Errorf("core: env_traffic_start: bad bw %q", params["bw"])
	}
	pairs, err := strconv.Atoi(paramOr(params, "random_pairs", "1"))
	if err != nil {
		return fmt.Errorf("core: env_traffic_start: bad random_pairs %q", params["random_pairs"])
	}
	choice := fault.PairChoice(atoi(paramOr(params, "choice", "0")))
	var candidates []string
	switch choice {
	case fault.ChooseEnv:
		candidates = e.envIDs
	case fault.ChooseActors:
		candidates = e.actorIDs
	case fault.ChooseAll:
		candidates = append(append([]string{}, e.actorIDs...), e.envIDs...)
	default:
		return fmt.Errorf("core: env_traffic_start: bad choice %q", params["choice"])
	}
	if len(candidates) < 2 {
		// Fall back to all nodes so minimal descriptions without
		// dedicated environment nodes still work.
		candidates = append(append([]string{}, e.actorIDs...), e.envIDs...)
	}
	ids := make([]netem.NodeID, len(candidates))
	for i, c := range candidates {
		ids[i] = netem.NodeID(c)
	}
	cfg := fault.TrafficConfig{
		Pairs:        pairs,
		BwKbps:       bw,
		Choice:       choice,
		Seed:         int64(atoi(paramOr(params, "random_seed", "1"))),
		SwitchAmount: atoi(paramOr(params, "random_switch_amount", "0")),
		SwitchSeed:   int64(atoi(paramOr(params, "random_switch_seed", "0"))),
		Run:          atoi(paramOr(params, "__run", "0")),
	}
	tr, err := fault.StartTraffic(e.s, e.nw, ids, cfg)
	if err != nil {
		return err
	}
	e.traffic = tr
	e.emit(eventlog.EvEnvTrafficStart, map[string]string{
		"bw": params["bw"], "pairs": fmt.Sprint(pairs),
	})
	return nil
}

// Reset stops all environment manipulations (run preparation/clean-up).
func (e *EnvExec) Reset() {
	if e.traffic != nil {
		e.traffic.Stop()
		e.traffic = nil
	}
	if e.dropAll != nil {
		e.dropAll.Stop()
	}
}

func paramOr(params map[string]string, key, def string) string {
	if v := params[key]; v != "" {
		return v
	}
	return def
}

func atoi(s string) int {
	v, _ := strconv.Atoi(s)
	return v
}

package core

import (
	"fmt"
	"strconv"
	"strings"

	"excovery/internal/eventlog"
	"excovery/internal/fault"
	"excovery/internal/netem"
	"excovery/internal/sched"
)

// EnvExec executes environment manipulation actions on the emulated
// platform (§IV-D2): the traffic generator of Fig. 7 and drop-all. It
// implements master.EnvExecutor.
type EnvExec struct {
	s        *sched.Scheduler
	nw       *netem.Network
	actorIDs []string
	envIDs   []string
	emit     func(typ string, params map[string]string)

	traffic   *fault.Traffic
	dropAll   *fault.DropAll
	partition fault.Injection
}

// NewEnvExec builds the environment executor. emit receives the
// start/stop events the manipulation actions generate (§IV-D3).
func NewEnvExec(s *sched.Scheduler, nw *netem.Network, actorIDs, envIDs []string,
	emit func(typ string, params map[string]string)) *EnvExec {
	if emit == nil {
		emit = func(string, map[string]string) {}
	}
	return &EnvExec{s: s, nw: nw, actorIDs: actorIDs, envIDs: envIDs, emit: emit}
}

// Traffic returns the running traffic generator, if any.
func (e *EnvExec) Traffic() *fault.Traffic { return e.traffic }

// Execute implements the environment action vocabulary.
func (e *EnvExec) Execute(action string, params map[string]string) error {
	switch action {
	case eventlog.EvEnvTrafficStart:
		return e.trafficStart(params)
	case eventlog.EvEnvTrafficStop:
		if e.traffic != nil {
			e.traffic.Stop()
			e.traffic = nil
			e.emit(eventlog.EvEnvTrafficStop, nil)
		}
		return nil
	case eventlog.EvEnvDropAllStart:
		if e.dropAll == nil {
			proto := params["proto"]
			if proto == "" {
				proto = "sd"
			}
			e.dropAll = fault.NewDropAll(e.nw, proto)
		}
		e.dropAll.Start()
		e.emit(eventlog.EvEnvDropAllStart, nil)
		return nil
	case eventlog.EvEnvDropAllStop:
		if e.dropAll != nil {
			e.dropAll.Stop()
			e.emit(eventlog.EvEnvDropAllStop, nil)
		}
		return nil
	case eventlog.EvEnvPartitionStart:
		return e.partitionStart(params)
	case eventlog.EvEnvPartitionHeal:
		if e.partition != nil {
			e.partition.Stop()
			e.partition = nil
			e.emit(eventlog.EvEnvPartitionHeal, nil)
		}
		return nil
	default:
		return fmt.Errorf("core: unknown environment action %q", action)
	}
}

func (e *EnvExec) trafficStart(params map[string]string) error {
	if e.traffic != nil {
		e.traffic.Stop()
		e.traffic = nil
	}
	bw, err := strconv.Atoi(params["bw"])
	if err != nil {
		return fmt.Errorf("core: env_traffic_start: bad bw %q", params["bw"])
	}
	pairs, err := strconv.Atoi(paramOr(params, "random_pairs", "1"))
	if err != nil {
		return fmt.Errorf("core: env_traffic_start: bad random_pairs %q", params["random_pairs"])
	}
	choice := fault.PairChoice(atoi(paramOr(params, "choice", "0")))
	var candidates []string
	switch choice {
	case fault.ChooseEnv:
		candidates = e.envIDs
	case fault.ChooseActors:
		candidates = e.actorIDs
	case fault.ChooseAll:
		candidates = append(append([]string{}, e.actorIDs...), e.envIDs...)
	default:
		return fmt.Errorf("core: env_traffic_start: bad choice %q", params["choice"])
	}
	if len(candidates) < 2 {
		// Fall back to all nodes so minimal descriptions without
		// dedicated environment nodes still work.
		candidates = append(append([]string{}, e.actorIDs...), e.envIDs...)
	}
	ids := make([]netem.NodeID, len(candidates))
	for i, c := range candidates {
		ids[i] = netem.NodeID(c)
	}
	cfg := fault.TrafficConfig{
		Pairs:        pairs,
		BwKbps:       bw,
		Choice:       choice,
		Seed:         int64(atoi(paramOr(params, "random_seed", "1"))),
		SwitchAmount: atoi(paramOr(params, "random_switch_amount", "0")),
		SwitchSeed:   int64(atoi(paramOr(params, "random_switch_seed", "0"))),
		Run:          atoi(paramOr(params, "__run", "0")),
	}
	tr, err := fault.StartTraffic(e.s, e.nw, ids, cfg)
	if err != nil {
		return err
	}
	e.traffic = tr
	e.emit(eventlog.EvEnvTrafficStart, map[string]string{
		"bw": params["bw"], "pairs": fmt.Sprint(pairs),
	})
	return nil
}

// partitionStart cuts the network into the two comma-separated groups of
// platform node ids in group_a and group_b (DESIGN.md §12). A previous
// partition is healed first; the cut stays until env_partition_heal or
// run cleanup.
func (e *EnvExec) partitionStart(params map[string]string) error {
	groupA := splitIDs(params["group_a"])
	groupB := splitIDs(params["group_b"])
	p, err := fault.NewPartition(e.nw, groupA, groupB)
	if err != nil {
		return fmt.Errorf("core: env_partition_start: %w", err)
	}
	if e.partition != nil {
		e.partition.Stop()
	}
	e.partition = p
	p.Start()
	e.emit(eventlog.EvEnvPartitionStart, map[string]string{
		"group_a": params["group_a"], "group_b": params["group_b"],
	})
	return nil
}

// splitIDs parses a comma-separated node-id list, trimming blanks.
func splitIDs(s string) []netem.NodeID {
	var out []netem.NodeID
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, netem.NodeID(part))
		}
	}
	return out
}

// Reset stops all environment manipulations (run preparation/clean-up).
func (e *EnvExec) Reset() {
	if e.traffic != nil {
		e.traffic.Stop()
		e.traffic = nil
	}
	if e.dropAll != nil {
		e.dropAll.Stop()
	}
	if e.partition != nil {
		e.partition.Stop()
		e.partition = nil
	}
}

func paramOr(params map[string]string, key, def string) string {
	if v := params[key]; v != "" {
		return v
	}
	return def
}

func atoi(s string) int {
	v, _ := strconv.Atoi(s)
	return v
}

package core

import (
	"errors"
	"testing"
	"time"

	"excovery/internal/desc"
	"excovery/internal/eventlog"
	"excovery/internal/failpoint"
	"excovery/internal/master"
	"excovery/internal/metrics"
	"excovery/internal/sd"
	"excovery/internal/store/reldb"
)

// findEvent returns the first event of a type in a run's event list.
func findEvent(events []eventlog.Event, typ string) (eventlog.Event, bool) {
	for _, ev := range events {
		if ev.Type == typ {
			return ev, true
		}
	}
	return eventlog.Event{}, false
}

func TestOneShotDiscoveryFig11(t *testing.T) {
	x, err := New(desc.OneShot(30), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Completed != 1 {
		t.Fatalf("report: %d results, %d completed", len(rep.Results), rep.Completed)
	}
	rr := rep.Results[0]
	if rr.Err != nil || rr.Aborted {
		t.Fatalf("run failed: err=%v aborted=%v", rr.Err, rr.Aborted)
	}
	if rr.Timeouts != 0 {
		t.Fatalf("discovery timed out: %d waits expired", rr.Timeouts)
	}
	// Reconstruct the Fig. 11 timeline: sd_start_search on the SU, then
	// sd_service_add naming the SM.
	search, ok := findEvent(rr.Events, sd.EvStartSearch)
	if !ok {
		t.Fatal("no sd_start_search event")
	}
	add, ok := findEvent(rr.Events, sd.EvServiceAdd)
	if !ok {
		t.Fatal("no sd_service_add event")
	}
	if add.Node != "B" || add.Param("node") != "A" {
		t.Fatalf("discovery event wrong: %+v", add)
	}
	tR := add.Time.Sub(search.Time)
	// One-hop query/response with 20–120 ms response jitter.
	if tR <= 0 || tR > time.Second {
		t.Fatalf("t_R = %v", tR)
	}
	// The run's event sequence must contain the full lifecycle.
	for _, typ := range []string{sd.EvInitDone, sd.EvStartPublish, sd.EvStopPublish,
		sd.EvStopSearch, sd.EvExitDone, "run_init"} {
		if _, ok := findEvent(rr.Events, typ); !ok {
			t.Errorf("missing event %s", typ)
		}
	}
}

func TestOneShotDeterministicAcrossRuns(t *testing.T) {
	tR := func() time.Duration {
		x, err := New(desc.OneShot(30), Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := x.Run()
		if err != nil {
			t.Fatal(err)
		}
		rr := rep.Results[0]
		search, _ := findEvent(rr.Events, sd.EvStartSearch)
		add, _ := findEvent(rr.Events, sd.EvServiceAdd)
		return add.Time.Sub(search.Time)
	}
	if a, b := tR(), tR(); a != b {
		t.Fatalf("t_R differs across identical experiments: %v vs %v", a, b)
	}
}

func TestCaseStudySmallEndToEnd(t *testing.T) {
	e := desc.CaseStudy(2) // 2 pairs × 3 bw × 2 reps = 12 runs
	dir := t.TempDir()
	x, err := New(e, Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 12 {
		t.Fatalf("results = %d, want 12", len(rep.Results))
	}
	if rep.Completed != 12 {
		for _, rr := range rep.Results {
			if rr.Err != nil {
				t.Logf("run %d: %v", rr.Run.ID, rr.Err)
			}
		}
		t.Fatalf("completed = %d, want 12", rep.Completed)
	}
	discovered := 0
	for _, rr := range rep.Results {
		if _, ok := findEvent(rr.Events, sd.EvServiceAdd); ok {
			discovered++
		}
		// Background traffic must have been started in every run.
		if _, ok := findEvent(rr.Events, "env_traffic_start"); !ok {
			t.Fatalf("run %d: no traffic generation", rr.Run.ID)
		}
	}
	if discovered < 10 {
		t.Fatalf("only %d/12 runs discovered the SM", discovered)
	}

	// Level 3: condition and check Table I content.
	db, err := x.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	runs, err := db.RunIDs()
	if err != nil || len(runs) != 12 {
		t.Fatalf("level-3 runs = %v, %v", runs, err)
	}
	evs, err := db.EventsOfRun(runs[0])
	if err != nil || len(evs) == 0 {
		t.Fatalf("level-3 events = %d, %v", len(evs), err)
	}
	pkts, err := db.PacketsOfRun(runs[0])
	if err != nil || len(pkts) == 0 {
		t.Fatalf("level-3 packets = %d, %v", len(pkts), err)
	}
	info, err := db.Info()
	if err != nil || info.Name != "sd-twoparty-load" {
		t.Fatalf("level-3 info = %+v, %v", info, err)
	}
	// The stored description must reparse and regenerate the same plan
	// (transparency/repeatability, §IV-F).
	e2, err := desc.ParseString(info.ExpXML)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := desc.GeneratePlan(e2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Runs) != 12 {
		t.Fatalf("replanned runs = %d", len(p2.Runs))
	}
}

func TestThreePartyEndToEnd(t *testing.T) {
	x, err := New(desc.ThreeParty(30, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	rr := rep.Results[0]
	if rr.Err != nil || rr.Aborted || rr.Timeouts != 0 {
		t.Fatalf("run: err=%v aborted=%v timeouts=%d", rr.Err, rr.Aborted, rr.Timeouts)
	}
	for _, typ := range []string{sd.EvSCMStarted, sd.EvSCMFound, sd.EvSCMRegAdd, sd.EvServiceAdd} {
		if _, ok := findEvent(rr.Events, typ); !ok {
			t.Errorf("missing %s", typ)
		}
	}
	add, _ := findEvent(rr.Events, sd.EvServiceAdd)
	if add.Node != "B" || add.Param("node") != "A" {
		t.Fatalf("discovery event: %+v", add)
	}
}

func TestResumeSkipsCompletedRuns(t *testing.T) {
	dir := t.TempDir()
	e := desc.OneShot(10)
	e.Repl.Count = 3
	x1, err := New(e, Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := x1.Run()
	if err != nil || rep1.Completed != 3 {
		t.Fatalf("first pass: %+v, %v", rep1, err)
	}
	// Re-run with Resume: everything already done.
	x2, err := New(e, Options{StoreDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := x2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Skipped != 3 || rep2.Completed != 0 {
		t.Fatalf("resume: skipped=%d completed=%d", rep2.Skipped, rep2.Completed)
	}
}

func TestJournaledCrashResumeThroughFacade(t *testing.T) {
	// The facade wiring of the durability layer: a journaled session
	// crashes (in-process) at run 1's attempt, a resumed session skips
	// run 0, recovers run 1 and finishes the experiment.
	dir := t.TempDir()
	e := desc.OneShot(10)
	e.Repl.Count = 3
	fp := failpoint.New(1)
	fp.Enable(failpoint.SiteMasterAttempt, failpoint.Rule{
		Prob: 1, Act: failpoint.Crash, Skip: 1, Count: 1})
	x1, err := New(e, Options{StoreDir: dir, Journal: true, Failpoints: fp})
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := x1.Run()
	if !errors.Is(err, master.ErrCrashed) || rep1.Completed != 1 {
		t.Fatalf("crash session: rep=%+v err=%v", rep1, err)
	}
	x1.Close()

	x2, err := New(e, Options{StoreDir: dir, Journal: true, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer x2.Close()
	rep2, err := x2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Skipped != 1 || rep2.Recovered != 1 || rep2.Completed != 2 {
		t.Fatalf("resume: %+v", rep2)
	}
	db, err := x2.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if ids, err := db.RunIDs(); err != nil || len(ids) != 3 {
		t.Fatalf("level-3 runs = %v (%v)", ids, err)
	}
}

func TestJournalRequiresStoreDir(t *testing.T) {
	if _, err := New(desc.OneShot(10), Options{Journal: true}); err == nil {
		t.Fatal("Journal without StoreDir accepted")
	}
}

func TestClockSkewIsConditionedAway(t *testing.T) {
	dir := t.TempDir()
	e := desc.OneShot(30)
	opts := Options{StoreDir: dir}
	opts.ClockSkew.MaxOffset = 200 * time.Millisecond
	opts.ClockSkew.MaxDriftPPM = 50
	x, err := New(e, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil || rep.Completed != 1 {
		t.Fatalf("run: %v, completed=%d", err, rep.Completed)
	}
	db, err := x.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	evs, err := db.EventsOfRun(0)
	if err != nil {
		t.Fatal(err)
	}
	// On the common time base, causality must hold: the SM's
	// sd_start_publish precedes the SU's sd_service_add, and the search
	// precedes the discovery.
	var publish, search, add eventlog.Event
	for _, ev := range evs {
		switch ev.Type {
		case sd.EvStartPublish:
			publish = ev
		case sd.EvStartSearch:
			search = ev
		case sd.EvServiceAdd:
			add = ev
		}
	}
	if add.Type == "" || publish.Type == "" || search.Type == "" {
		t.Fatalf("missing events in conditioned DB")
	}
	if add.Time.Before(publish.Time) || add.Time.Before(search.Time) {
		t.Fatalf("causality violated after conditioning: pub=%v search=%v add=%v",
			publish.Time, search.Time, add.Time)
	}
	// The measured skew must be recorded in RunInfos (TimeDiff column).
	rows, err := db.DB.Select(reldb.Query{Table: "RunInfos"})
	if err != nil || len(rows) == 0 {
		t.Fatalf("RunInfos = %d rows, %v", len(rows), err)
	}
	sawSkew := false
	for _, r := range rows {
		if diff := r[3].(float64); diff != 0 {
			sawSkew = true
		}
	}
	if !sawSkew {
		t.Fatal("no nonzero TimeDiff recorded despite clock skew")
	}
}

func TestScmdirOnOneShotTimesOutGracefully(t *testing.T) {
	// Forcing the three-party protocol onto a description without an SCM
	// must not wedge: the SU's wait expires at its deadline, "done" is
	// flagged, and the run completes with one timeout.
	x, err := New(desc.OneShot(5), Options{Protocol: "scmdir"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	rr := rep.Results[0]
	if rr.Err != nil || rr.Aborted {
		t.Fatalf("err=%v aborted=%v", rr.Err, rr.Aborted)
	}
	if rr.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1 (SU deadline)", rr.Timeouts)
	}
	if _, ok := findEvent(rr.Events, "wait_timeout"); !ok {
		t.Fatal("wait_timeout event missing")
	}
}

func TestUnknownProtocolRejected(t *testing.T) {
	if _, err := New(desc.OneShot(1), Options{Protocol: "quantum"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestChainTopologyMultiHopDiscovery(t *testing.T) {
	e := desc.OneShot(30)
	// Insert three relay nodes between A and B: chain order A, r0..r2, B
	// comes from the description's node list order.
	e.AbstractNodes = []string{"A", "r0", "r1", "r2", "B"}
	x, err := New(e, Options{Topology: TopoChain})
	if err != nil {
		t.Fatal(err)
	}
	if hc := x.Net.HopCount("A", "B"); hc != 4 {
		t.Fatalf("hop count = %d, want 4", hc)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	rr := rep.Results[0]
	if rr.Timeouts != 0 {
		t.Fatalf("multi-hop discovery failed: %d timeouts", rr.Timeouts)
	}
	search, _ := findEvent(rr.Events, sd.EvStartSearch)
	add, _ := findEvent(rr.Events, sd.EvServiceAdd)
	tR := add.Time.Sub(search.Time)
	if tR <= 0 {
		t.Fatalf("t_R = %v", tR)
	}
}

func TestOnRunDoneCallback(t *testing.T) {
	e := desc.OneShot(10)
	e.Repl.Count = 2
	calls := 0
	x, err := New(e, Options{OnRunDone: func(run desc.Run, rr master.RunResult) {
		calls++
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Run(); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("OnRunDone calls = %d", calls)
	}
}

func TestHybridProtocolAdaptive(t *testing.T) {
	// The hybrid architecture on the three-party description: the SCM
	// exists, so discovery may complete over either path, exactly once.
	x, err := New(desc.ThreeParty(30, 1), Options{Protocol: "hybrid"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	rr := rep.Results[0]
	if rr.Err != nil || rr.Aborted || rr.Timeouts != 0 {
		t.Fatalf("run: err=%v aborted=%v timeouts=%d", rr.Err, rr.Aborted, rr.Timeouts)
	}
	adds := 0
	for _, ev := range rr.Events {
		if ev.Type == sd.EvServiceAdd && ev.Node == "B" {
			adds++
		}
	}
	if adds != 1 {
		t.Fatalf("adds = %d, want 1 (hybrid dedup)", adds)
	}
	// The SCM itself booted; whether scm_found lands within the run
	// depends on whether the multicast path wins the race — both
	// outcomes are correct adaptive behaviour (adoption is covered by
	// the hybrid package tests).
	if _, ok := findEvent(rr.Events, sd.EvSCMStarted); !ok {
		t.Fatal("SCM did not start")
	}
}

func TestHybridProtocolWithoutSCM(t *testing.T) {
	// On the two-party description the hybrid agent falls back to pure
	// multicast discovery and still completes.
	x, err := New(desc.OneShot(30), Options{Protocol: "hybrid"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Timeouts != 0 {
		t.Fatalf("hybrid two-party fallback timed out")
	}
}

func TestGridTopology(t *testing.T) {
	e := desc.OneShot(30)
	e.AbstractNodes = []string{"A", "r0", "r1", "r2", "B", "r3"}
	x, err := New(e, Options{Topology: TopoGrid, GridWidth: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Row-major 3×2 grid: A r0 r1 / r2 B r3 — A to B is 2 hops.
	if hc := x.Net.HopCount("A", "B"); hc != 2 {
		t.Fatalf("hop count = %d", hc)
	}
	rep, err := x.Run()
	if err != nil || rep.Results[0].Timeouts != 0 {
		t.Fatalf("grid discovery failed: %v / %+v", err, rep.Results[0])
	}
}

func TestGridTopologyRequiresWidth(t *testing.T) {
	if _, err := New(desc.OneShot(1), Options{Topology: TopoGrid}); err == nil {
		t.Fatal("grid without width accepted")
	}
}

func TestGeometricTopologyConnected(t *testing.T) {
	e := desc.OneShot(30)
	e.AbstractNodes = []string{"A", "n1", "n2", "n3", "n4", "n5", "B"}
	x, err := New(e, Options{Topology: TopoGeometric, GeoRadius: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if hc := x.Net.HopCount("A", "B"); hc < 1 {
		t.Fatalf("A-B unreachable: %d", hc)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 1 {
		t.Fatalf("completed = %d", rep.Completed)
	}
}

func TestUnknownTopologyRejected(t *testing.T) {
	if _, err := New(desc.OneShot(1), Options{Topology: "torus"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestMultiInstanceActorAllSMsRequired(t *testing.T) {
	// Two SM instances under actor0: the SU's param_dependency over "all"
	// instances requires both to be discovered (Fig. 10 semantics at
	// instance count > 1).
	e := desc.OneShot(30)
	e.AbstractNodes = []string{"A0", "A1", "B"}
	e.Factors[0] = desc.ActorMapFactor("fact_nodes", desc.UsageBlocking, map[string][]string{
		"actor0": {"A0", "A1"},
		"actor1": {"B"},
	})
	x, err := New(e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	rr := rep.Results[0]
	if rr.Err != nil || rr.Timeouts != 0 {
		t.Fatalf("run: err=%v timeouts=%d", rr.Err, rr.Timeouts)
	}
	// Both SMs published and were discovered.
	adds := map[string]bool{}
	for _, ev := range rr.Events {
		if ev.Type == sd.EvServiceAdd && ev.Node == "B" {
			adds[ev.Param("node")] = true
		}
	}
	if !adds["A0"] || !adds["A1"] {
		t.Fatalf("discovered SMs = %v, want both", adds)
	}
	ms := metrics.FromReport(e, rep, "", "")
	if len(ms) != 1 || !ms[0].Complete || ms[0].Expected != 2 || ms[0].Found != 2 {
		t.Fatalf("metric = %+v", ms[0])
	}
}

func TestMaxRunTimeAbortViaCore(t *testing.T) {
	// A description waiting forever on a nonexistent event aborts at
	// MaxRunTime instead of wedging the experiment.
	e := desc.OneShot(30)
	e.NodeProcesses[0].Actions = []desc.Action{
		desc.WaitEvent(desc.WaitSpec{Event: "never_happens"}),
	}
	e.NodeProcesses[1].Actions = []desc.Action{
		desc.WaitEvent(desc.WaitSpec{Event: "never_happens"}),
	}
	x, err := New(e, Options{MaxRunTime: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Results[0].Aborted {
		t.Fatalf("run not aborted: %+v", rep.Results[0])
	}
}

func TestEnvExecValidation(t *testing.T) {
	x, err := New(desc.OneShot(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	x.S.Go("t", func() {
		if err := x.Env.Execute("env_warp", nil); err == nil {
			t.Error("unknown env action accepted")
		}
		if err := x.Env.Execute("env_traffic_start", map[string]string{"bw": "x"}); err == nil {
			t.Error("bad bw accepted")
		}
		if err := x.Env.Execute("env_traffic_start", map[string]string{"bw": "10", "random_pairs": "x"}); err == nil {
			t.Error("bad pairs accepted")
		}
		if err := x.Env.Execute("env_traffic_start", map[string]string{"bw": "10", "choice": "9"}); err == nil {
			t.Error("bad choice accepted")
		}
		// Drop-all start/stop cycle.
		if err := x.Env.Execute("env_drop_all_start", nil); err != nil {
			t.Error(err)
		}
		if err := x.Env.Execute("env_drop_all_stop", nil); err != nil {
			t.Error(err)
		}
		// Stop without start is a no-op.
		if err := x.Env.Execute("env_traffic_stop", nil); err != nil {
			t.Error(err)
		}
	})
	if err := x.S.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEnvTrafficFallsBackToAllNodes(t *testing.T) {
	// OneShot has no environment nodes: traffic between env nodes (choice
	// 0) falls back to the actor set so minimal descriptions still work.
	x, err := New(desc.OneShot(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	x.S.Go("t", func() {
		if err := x.Env.Execute("env_traffic_start", map[string]string{
			"bw": "10", "random_pairs": "1", "random_seed": "1",
		}); err != nil {
			t.Error(err)
		}
		if x.Env.Traffic() == nil {
			t.Error("no traffic running")
		}
		x.S.Sleep(time.Second)
		x.Env.Reset()
	})
	if err := x.S.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestPluginMeasurementReachesLevel3(t *testing.T) {
	// A registered plugin action records a custom measurement; it must
	// travel run store → conditioning → ExtraRunMeasurements (§IV-B5).
	e := desc.OneShot(30)
	e.NodeProcesses[1].Actions = append(e.NodeProcesses[1].Actions,
		desc.Act("measure_rssi", "samples", "3"))
	dir := t.TempDir()
	x, err := New(e, Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mgr := x.Managers["B"]
	mgr.RegisterPlugin("measure_rssi", func(params map[string]string) error {
		mgr.AddExtra("rssi.txt", []byte("-42dBm x"+params["samples"]))
		return nil
	})
	rep, err := x.Run()
	if err != nil || rep.Completed != 1 {
		t.Fatalf("run: %v completed=%d err=%v", err, rep.Completed, rep.Results[0].Err)
	}
	db, err := x.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.DB.Select(reldb.Query{Table: "ExtraRunMeasurements"})
	if err != nil || len(rows) != 1 {
		t.Fatalf("ExtraRunMeasurements rows = %d, %v", len(rows), err)
	}
	if rows[0][1] != "B" || rows[0][2] != "rssi.txt" ||
		string(rows[0][3].([]byte)) != "-42dBm x3" {
		t.Fatalf("row = %v", rows[0])
	}
}

func TestTimedInterfaceFaultDelaysDiscovery(t *testing.T) {
	// A manipulation process arms a timed interface fault on the SM as
	// soon as publishing starts; its ~10 s active block covers the SU's
	// search start (at t ≈ 5 s), so the first queries go unanswered and
	// discovery only succeeds through retry backoff after the fault
	// lifts — t_R far beyond the fault-free baseline of ~40 ms.
	e := desc.OneShot(30)
	e.ManipProcesses = []desc.ManipulationProcess{{
		Actor: "actor0", NodesRef: "fact_nodes",
		Actions: []desc.Action{
			desc.WaitEvent(desc.WaitSpec{
				Event: "sd_start_publish", FromActor: "actor0", FromInstance: "all",
			}),
			desc.Act("fault_interface",
				"direction", "both", "duration_s", "10", "rate", "0.99", "randomseed", "1"),
			desc.WaitEvent(desc.WaitSpec{Event: "done"}),
			desc.Act("fault_stop", "kind", "fault_interface"),
		},
	}}
	x, err := New(e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	rr := rep.Results[0]
	if rr.Err != nil || rr.Aborted {
		t.Fatalf("run: err=%v aborted=%v", rr.Err, rr.Aborted)
	}
	ms := metrics.FromReport(e, rep, "", "")
	if !ms[0].Complete {
		t.Fatal("discovery never completed after the fault lifted")
	}
	if ms[0].TR < 3*time.Second {
		t.Fatalf("t_R = %v; the ~10 s interface fault should dominate", ms[0].TR)
	}
	// The fault start/stop events were recorded on the SM (§IV-D3).
	if _, ok := findEvent(rr.Events, "fault_interface_start"); !ok {
		t.Fatal("no fault_interface_start event")
	}
}

func TestEEParamsConfigurePlatform(t *testing.T) {
	// A description alone configures topology, link quality and the run
	// bound through eeparams (§IV-E); explicit Options still win.
	e := desc.OneShot(30)
	e.AbstractNodes = []string{"A", "r0", "B"}
	e.EEParams = []desc.Param{
		{Key: "topology", Value: "chain"},
		{Key: "link_delay_ms", Value: "4"},
		{Key: "link_loss", Value: "0"},
		{Key: "radio_rate_bps", Value: "1000000"},
		{Key: "max_run_time_s", Value: "45"},
	}
	x, err := New(e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hc := x.Net.HopCount("A", "B"); hc != 2 {
		t.Fatalf("eeparam topology ignored: hops = %d", hc)
	}
	if lp := x.Net.Link("A", "r0"); lp == nil || lp.Delay != 4*time.Millisecond || lp.Loss != 0 {
		t.Fatalf("eeparam link ignored: %+v", lp)
	}
	rep, err := x.Run()
	if err != nil || rep.Completed != 1 {
		t.Fatalf("run: %v, completed=%d", err, rep.Completed)
	}

	// Explicit option overrides the document.
	x2, err := New(e, Options{Topology: TopoFull})
	if err != nil {
		t.Fatal(err)
	}
	if hc := x2.Net.HopCount("A", "B"); hc != 1 {
		t.Fatalf("explicit option lost: hops = %d", hc)
	}

	// Bad values are rejected.
	bad := desc.OneShot(1)
	bad.EEParams = []desc.Param{{Key: "link_loss", Value: "often"}}
	if _, err := New(bad, Options{}); err == nil {
		t.Fatal("bad eeparam accepted")
	}
}

package core_test

import (
	"fmt"
	"time"

	"excovery/internal/core"
	"excovery/internal/desc"
	"excovery/internal/metrics"
)

// Example runs the Fig. 11 one-shot discovery end to end on the emulated
// platform. Virtual time and fixed seeds make the output deterministic.
func Example() {
	exp := desc.OneShot(30) // 30 s discovery deadline
	x, err := core.New(exp, core.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rep, err := x.Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ms := metrics.FromReport(exp, rep, "", "")
	fmt.Printf("runs: %d\n", rep.Completed)
	fmt.Printf("discovered: %v\n", ms[0].Complete)
	fmt.Printf("t_R: %s\n", ms[0].TR.Round(time.Microsecond))
	// Output:
	// runs: 1
	// discovered: true
	// t_R: 41.276ms
}

// Example_factorSweep shows a factorial experiment: the description's
// factors expand into a treatment plan, and per-treatment metrics group by
// factor level.
func Example_factorSweep() {
	exp := desc.CaseStudy(2) // 2 replications per treatment
	plan, _ := desc.GeneratePlan(exp)
	fmt.Printf("treatments: %d, runs: %d\n", plan.Treatments, len(plan.Runs))

	x, err := core.New(exp, core.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rep, _ := x.Run()
	ms := metrics.FromReport(exp, rep, "", "")
	byBw := metrics.GroupBy(ms, "fact_bw")
	for _, bw := range []string{"10", "50", "100"} {
		fmt.Printf("bw=%s kbit/s: %d runs, all complete: %v\n",
			bw, len(byBw[bw]), metrics.Responsiveness(byBw[bw], 0) == 1)
	}
	// Output:
	// treatments: 6, runs: 12
	// bw=10 kbit/s: 4 runs, all complete: true
	// bw=50 kbit/s: 4 runs, all complete: true
	// bw=100 kbit/s: 4 runs, all complete: true
}

package core

// End-to-end checks for the canned chaos scenarios: they must run to
// completion through the full stack (description → plan → master → node
// executors → netem) and, with identical seeds, leave byte-identical
// level-3 artifacts.

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"excovery/internal/desc"
	"excovery/internal/eventlog"
)

// runToLevel3 executes an experiment with a level-2 store, conditions it
// and returns the serialized level-3 database plus the first run's events.
func runToLevel3(t *testing.T, e *desc.Experiment) ([]byte, []eventlog.Event) {
	t.Helper()
	dir := t.TempDir()
	x, err := New(e, Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != len(rep.Results) {
		for _, rr := range rep.Results {
			if rr.Err != nil {
				t.Logf("run %d: %v", rr.Run.ID, rr.Err)
			}
		}
		t.Fatalf("completed %d of %d runs", rep.Completed, len(rep.Results))
	}
	db, err := x.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "experiment.l3")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw, rep.Results[0].Events
}

func TestChaosReorderDeterministicLevel3(t *testing.T) {
	raw1, events := runToLevel3(t, desc.ChaosReorder(1))
	// The reorder fault must actually have fired through the executor.
	if _, ok := findEvent(events, string(eventlog.EvFaultMsgReorderStart)); !ok {
		t.Fatal("no fault_msg_reorder_start event in run 0")
	}
	if _, ok := findEvent(events, string(eventlog.EvFaultMsgReorderStop)); !ok {
		t.Fatal("no fault_msg_reorder_stop event in run 0")
	}
	raw2, _ := runToLevel3(t, desc.ChaosReorder(1))
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("level-3 artifacts differ across identical experiments (%d vs %d bytes)",
			len(raw1), len(raw2))
	}
}

func TestPartitionHealDeterministicLevel3(t *testing.T) {
	raw1, events := runToLevel3(t, desc.PartitionHeal(1))
	for _, typ := range []eventlog.Name{eventlog.EvEnvPartitionStart, eventlog.EvEnvPartitionHeal} {
		if _, ok := findEvent(events, string(typ)); !ok {
			t.Fatalf("no %s event in run 0", typ)
		}
	}
	raw2, _ := runToLevel3(t, desc.PartitionHeal(1))
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("level-3 artifacts differ across identical experiments (%d vs %d bytes)",
			len(raw1), len(raw2))
	}
}

// TestRegistryChurnDeterministicLevel3 runs the self-healing fleet's
// companion scenario (DESIGN.md §14): the SU claims the active publisher,
// that publisher's node is killed at the claim, and the standby must be
// re-discovered before the deadline. "Discovery measured by discovery."
func TestRegistryChurnDeterministicLevel3(t *testing.T) {
	raw1, events := runToLevel3(t, desc.RegistryChurn(1))
	// The churn sequence actually happened, in order: first claim, kill,
	// then the re-discovery completing the run.
	claimed, ok := findEvent(events, "claimed")
	if !ok {
		t.Fatal("SU never claimed the first publisher")
	}
	kill, ok := findEvent(events, string(eventlog.EvFaultNodeKillStart))
	if !ok {
		t.Fatal("no fault_node_kill_start event in run 0")
	}
	done, ok := findEvent(events, "done")
	if !ok {
		t.Fatal("SU never finished")
	}
	// The kill reacts to the claim in zero virtual time, so order on the
	// bus arrival sequence, not timestamps.
	if claimed.Seq >= kill.Seq || kill.Seq >= done.Seq {
		t.Fatalf("churn out of order: claimed #%d, kill #%d, done #%d",
			claimed.Seq, kill.Seq, done.Seq)
	}
	raw2, _ := runToLevel3(t, desc.RegistryChurn(1))
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("level-3 artifacts differ across identical experiments (%d vs %d bytes)",
			len(raw1), len(raw2))
	}
}

// TestChaosLevel3IdenticalAcrossGOMAXPROCS pins the determinism contract
// of the sharded emulator era at the artifact level: for one seed, the
// serialized level-3 database of a chaos scenario must be byte-identical
// whether the process runs on one core or eight.
func TestChaosLevel3IdenticalAcrossGOMAXPROCS(t *testing.T) {
	scenarios := map[string]func(int) *desc.Experiment{
		"reorder":        desc.ChaosReorder,
		"partition-heal": desc.PartitionHeal,
	}
	for name, mk := range scenarios {
		t.Run(name, func(t *testing.T) {
			prev := runtime.GOMAXPROCS(1)
			raw1, _ := runToLevel3(t, mk(1))
			runtime.GOMAXPROCS(8)
			raw8, _ := runToLevel3(t, mk(1))
			runtime.GOMAXPROCS(prev)
			if !bytes.Equal(raw1, raw8) {
				t.Fatalf("level-3 artifacts differ between GOMAXPROCS=1 (%d bytes) and 8 (%d bytes)",
					len(raw1), len(raw8))
			}
		})
	}
}

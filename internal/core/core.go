// Package core is the public facade of the ExCovery reproduction: it
// assembles an emulated platform (network, node managers, SD agents,
// event bus, master) from an abstract experiment description and runs the
// experiment end to end — description in, level-3 database out.
//
// A minimal session:
//
//	exp := desc.CaseStudy(100)
//	x, err := core.New(exp, core.Options{})
//	rep, err := x.Run()
//	db, err := x.Finalize()   // level-3 database (Table I)
//
// The emulated platform substitutes the paper's DES wireless testbed (see
// DESIGN.md); all behaviour relevant to the experiments — multicast
// flooding, per-link loss and delay, radio serialization, background
// traffic, clock skew — is reproduced by internal/netem and friends.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"excovery/internal/desc"
	"excovery/internal/eventlog"
	"excovery/internal/failpoint"
	"excovery/internal/master"
	"excovery/internal/netem"
	"excovery/internal/node"
	"excovery/internal/obs"
	"excovery/internal/sched"
	"excovery/internal/sd"
	"excovery/internal/sd/hybrid"
	"excovery/internal/sd/scmdir"
	"excovery/internal/sd/zeroconf"
	"excovery/internal/store"
	"excovery/internal/vclock"
)

// TopologyKind selects how the platform nodes are wired.
type TopologyKind string

const (
	// TopoFull is a single collision domain (one-hop WLAN); default.
	TopoFull TopologyKind = "full"
	// TopoChain is a linear multi-hop chain in platform-node order.
	TopoChain TopologyKind = "chain"
	// TopoGrid is a row-major grid; set GridWidth.
	TopoGrid TopologyKind = "grid"
	// TopoGeometric is a random geometric graph; set GeoRadius.
	TopoGeometric TopologyKind = "geometric"
)

// Options tune the emulated platform.
type Options struct {
	// Topology selects the wiring of the platform nodes; default full.
	Topology TopologyKind
	// GridWidth is the grid column count (TopoGrid).
	GridWidth int
	// GeoRadius is the link radius in the unit square (TopoGeometric);
	// default 0.4.
	GeoRadius float64
	// Link parameterizes all links; zero value means netem.DefaultLink.
	Link netem.LinkParams
	// Node parameterizes all radios (rate, queue).
	Node netem.NodeParams
	// Protocol overrides the description's sd_protocol informative
	// parameter ("zeroconf" or "scmdir").
	Protocol string
	// Seed overrides the description seed for platform randomness.
	Seed int64
	// ClockSkew enables per-node clock deviation: offsets uniform in
	// ±MaxOffset, drift uniform in ±MaxDriftPPM.
	ClockSkew struct {
		MaxOffset   time.Duration
		MaxDriftPPM float64
	}
	// StoreDir is the level-2 directory; "" disables persistent
	// storage (the Report still carries all events).
	StoreDir string
	// MaxRunTime bounds one run; 0 means 120 s.
	MaxRunTime time.Duration
	// Resume skips runs already marked done in StoreDir.
	Resume bool
	// Journal opens a write-ahead run journal in StoreDir: every attempt
	// is recorded before it executes, and Resume replays the journal to
	// discard and re-execute runs that died mid-attempt in a crashed
	// session. Requires StoreDir.
	Journal bool
	// MaxAttempts re-executes failed or aborted runs in place up to this
	// many times (run-level retry); values <= 1 disable it.
	MaxAttempts int
	// QuarantineAfter quarantines a node after this many consecutive
	// control-channel failures; 0 disables quarantine.
	QuarantineAfter int
	// ProbationProbes re-admits a quarantined node after this many
	// consecutive healthy preflight probes; 0 keeps quarantine permanent.
	ProbationProbes int
	// Failpoints, if set, is consulted at the master's failpoint sites
	// (crash injection for durability tests).
	Failpoints *failpoint.Registry
	// CrashFn is invoked when a crash failpoint fires; it must not
	// return. Nil makes the run return master.ErrCrashed instead.
	CrashFn func()
	// SCMNode names the platform node that hosts the SCM when the
	// scmdir protocol needs a dedicated directory node; empty picks the
	// first environment node.
	SCMNode string
	// OnRunDone observes completed runs.
	OnRunDone func(run desc.Run, rr master.RunResult)
	// RealTime runs the platform on a wall-clock-paced scheduler instead
	// of virtual time; Speed scales the pacing (0.1 = ten times faster
	// than real time). Used by the distributed XML-RPC deployment, where
	// external RPC requests must interleave with emulated time.
	RealTime bool
	Speed    float64
	// OnEvent observes every event published on the bus (the node-host
	// side of the distributed deployment forwards them to the master).
	OnEvent func(ev eventlog.Event)
	// S, if set, hosts the platform on an existing scheduler instead of
	// creating one; RealTime and Speed are ignored. Multi-replica fleet
	// tests use it to run several platform instances in one deterministic
	// virtual timeline.
	S *sched.Scheduler
	// Bus, if set, overrides the platform's event bus (shared-bus fleet
	// tests). Requires S.
	Bus *eventlog.Bus
	// Metrics, if set, instruments the emulator data path: the network
	// gets per-node/per-rule packet counters and queue-depth gauges, the
	// scheduler event-loop counters (see internal/obs/names.go). Nil
	// leaves both uninstrumented and allocation-free.
	Metrics *obs.Registry
}

// Experiment is an assembled emulated experiment.
type Experiment struct {
	Exp *desc.Experiment
	S   *sched.Scheduler
	Net *netem.Network
	Bus *eventlog.Bus
	// Managers by platform node id.
	Managers map[string]*node.Manager
	// Master drives the runs.
	Master *master.Master
	// Env is the environment executor.
	Env *EnvExec

	opts Options
	st   *store.RunStore
	j    *store.Journal
}

// handle adapts node.Manager to master.NodeHandle.
type handle struct{ m *node.Manager }

func (h handle) ID() string                                  { return h.m.ID() }
func (h handle) PrepareRun(run int)                          { h.m.PrepareRun(run) }
func (h handle) CleanupRun(run int)                          { h.m.CleanupRun(run) }
func (h handle) Execute(a string, p map[string]string) error { return h.m.Execute(a, p) }
func (h handle) Emit(t string, p map[string]string)          { h.m.Emit(t, p) }
func (h handle) LocalTime() time.Time                        { return h.m.LocalTime() }
func (h handle) HarvestEvents(run int) []eventlog.Event      { return h.m.Recorder().RunEvents(run) }
func (h handle) HarvestPackets() []store.PacketRecord        { return h.m.HarvestRun() }
func (h handle) HarvestExtras() []store.ExtraMeasurement     { return h.m.HarvestExtras() }

// applyEEParams folds the description's EE-specific parameters (§IV-E:
// "expose specific parameters used in the implementation to the
// description file") into zero-valued options, so a document alone can
// configure the platform. Recognized keys:
//
//	topology          full | chain | grid | geometric
//	grid_width        grid column count
//	geo_radius        geometric link radius
//	link_delay_ms     per-link delay
//	link_jitter_ms    per-link jitter
//	link_loss         per-link loss probability
//	radio_rate_bps    node transmission rate
//	max_run_time_s    per-run execution bound
//
// Explicit Options fields win over document parameters.
func applyEEParams(e *desc.Experiment, opts *Options) error {
	getF := func(key string) (float64, bool, error) {
		v := e.EEParam(key, "")
		if v == "" {
			return 0, false, nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, false, fmt.Errorf("core: eeparam %s: bad value %q", key, v)
		}
		return f, true, nil
	}
	if opts.Topology == "" {
		opts.Topology = TopologyKind(e.EEParam("topology", ""))
	}
	if opts.GridWidth == 0 {
		if f, ok, err := getF("grid_width"); err != nil {
			return err
		} else if ok {
			opts.GridWidth = int(f)
		}
	}
	if opts.GeoRadius == 0 {
		if f, ok, err := getF("geo_radius"); err != nil {
			return err
		} else if ok {
			opts.GeoRadius = f
		}
	}
	if opts.Link == (netem.LinkParams{}) {
		lp := netem.DefaultLink()
		changed := false
		if f, ok, err := getF("link_delay_ms"); err != nil {
			return err
		} else if ok {
			lp.Delay = time.Duration(f * float64(time.Millisecond))
			changed = true
		}
		if f, ok, err := getF("link_jitter_ms"); err != nil {
			return err
		} else if ok {
			lp.Jitter = time.Duration(f * float64(time.Millisecond))
			changed = true
		}
		if f, ok, err := getF("link_loss"); err != nil {
			return err
		} else if ok {
			lp.Loss = f
			changed = true
		}
		if changed {
			opts.Link = lp
		}
	}
	if opts.Node.RateBps == 0 {
		if f, ok, err := getF("radio_rate_bps"); err != nil {
			return err
		} else if ok {
			opts.Node.RateBps = int64(f)
		}
	}
	if opts.MaxRunTime == 0 {
		if f, ok, err := getF("max_run_time_s"); err != nil {
			return err
		} else if ok {
			opts.MaxRunTime = time.Duration(f * float64(time.Second))
		}
	}
	return nil
}

// New assembles the emulated platform for a description.
func New(e *desc.Experiment, opts Options) (*Experiment, error) {
	if err := desc.Validate(e); err != nil {
		return nil, err
	}
	if err := applyEEParams(e, &opts); err != nil {
		return nil, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = e.Seed
	}
	if seed == 0 {
		seed = 1
	}
	s := opts.S
	if s == nil {
		if opts.RealTime {
			s = sched.New(sched.RealTime, time.Date(2014, 5, 19, 0, 0, 0, 0, time.UTC))
			if opts.Speed > 0 {
				s.SetSpeed(opts.Speed)
			}
		} else {
			s = sched.NewVirtual()
		}
		if opts.Metrics != nil {
			s.Instrument(opts.Metrics)
		}
	}
	nw := netem.New(s, seed)
	nw.Instrument(opts.Metrics)
	bus := opts.Bus
	if bus == nil {
		bus = eventlog.NewBus(s)
		if opts.Metrics != nil {
			bus.Instrument(opts.Metrics)
		}
	}

	actorIDs, envIDs := platformNodeIDs(e)
	all := append(append([]string{}, actorIDs...), envIDs...)
	if len(all) == 0 {
		return nil, fmt.Errorf("core: description names no nodes")
	}

	// Create nodes, optionally with skewed clocks.
	skewRng := rand.New(rand.NewSource(seed ^ 0x51c3))
	for _, id := range all {
		np := opts.Node
		nd := nw.AddNode(netem.NodeID(id), np)
		if opts.ClockSkew.MaxOffset > 0 || opts.ClockSkew.MaxDriftPPM > 0 {
			var off time.Duration
			if opts.ClockSkew.MaxOffset > 0 {
				off = time.Duration(skewRng.Int63n(int64(2*opts.ClockSkew.MaxOffset))) - opts.ClockSkew.MaxOffset
			}
			drift := (skewRng.Float64()*2 - 1) * opts.ClockSkew.MaxDriftPPM
			nd.SetClock(vclock.NewSkewed(s, off, drift))
		}
	}
	if err := wireTopology(nw, all, opts, seed); err != nil {
		return nil, err
	}

	proto := opts.Protocol
	if proto == "" {
		proto = e.ParamValue("sd_protocol")
	}
	if proto == "" {
		proto = "zeroconf"
	}
	scheme := sd.Scheme(e.ParamValue("sd_scheme"))

	x := &Experiment{Exp: e, S: s, Net: nw, Bus: bus,
		Managers: map[string]*node.Manager{}, opts: opts}

	mkAgent := func(id string, nd *netem.Node, sink sd.EventSink) (sd.Agent, error) {
		aseed := seed ^ int64(len(id))*7919 ^ int64(id[0])<<13 ^ int64(id[len(id)-1])
		switch proto {
		case "zeroconf":
			return zeroconf.New(s, nd, zeroconf.Config{Scheme: scheme}, sink, aseed), nil
		case "scmdir":
			return scmdir.New(s, nd, scmdir.Config{}, sink, aseed), nil
		case "hybrid":
			cfg := hybrid.Config{}
			cfg.Zeroconf.Scheme = scheme
			return hybrid.New(s, nd, cfg, sink, aseed), nil
		default:
			return nil, fmt.Errorf("core: unknown sd_protocol %q", proto)
		}
	}

	handles := map[string]master.NodeHandle{}
	for _, id := range all {
		id := id
		nd := nw.Node(netem.NodeID(id))
		rec := eventlog.NewRecorder(id, nd.Clock(), func(ev eventlog.Event) {
			ev = bus.Publish(ev)
			if opts.OnEvent != nil {
				opts.OnEvent(ev)
			}
		})
		sink := sd.EventSink(func(typ string, params map[string]string) {
			rec.Emit(typ, params)
		})
		agent, err := mkAgent(id, nd, sink)
		if err != nil {
			return nil, err
		}
		mgr := node.New(s, nd, rec, agent)
		// SD packets go to the agent; the dispatch by protocol label
		// mirrors the NodeManager's component delegation (Fig. 12).
		nd.SetHandler(func(p *netem.Packet) {
			if p.Proto != "sd" {
				return
			}
			switch a := mgr.Agent().(type) {
			case *zeroconf.Agent:
				a.HandlePacket(p)
			case *scmdir.Agent:
				a.HandlePacket(p)
			case *hybrid.Agent:
				a.HandlePacket(p)
			}
		})
		x.Managers[id] = mgr
		handles[id] = handle{mgr}
	}

	x.Env = NewEnvExec(s, nw, actorIDs, envIDs, func(typ string, params map[string]string) {
		// Environment events surface on the master's recorder via the
		// bus only after the master exists; buffer through the bus
		// directly with node "env".
		bus.Publish(eventlog.Event{Run: -2, Node: "env", Time: s.Now(), Type: typ, Params: params})
	})

	var st *store.RunStore
	if opts.StoreDir != "" {
		var err error
		st, err = store.NewRunStore(opts.StoreDir)
		if err != nil {
			return nil, err
		}
	}
	x.st = st
	if opts.Journal {
		if st == nil {
			return nil, fmt.Errorf("core: Journal requires StoreDir")
		}
		var err error
		x.j, err = store.OpenJournal(opts.StoreDir)
		if err != nil {
			return nil, err
		}
	}

	m, err := master.New(master.Config{
		Exp: e, S: s, Bus: bus, Nodes: handles, Env: x.Env, Store: st,
		Journal:      x.j,
		PlatformSeed: seed,
		MaxRunTime:   opts.MaxRunTime, Resume: opts.Resume,
		Retry: master.RetryPolicy{
			MaxAttempts:     opts.MaxAttempts,
			QuarantineAfter: opts.QuarantineAfter,
			ProbationProbes: opts.ProbationProbes,
		},
		Failpoints: opts.Failpoints,
		CrashFn:    opts.CrashFn,
		OnRunDone:  opts.OnRunDone,
		Metrics:    opts.Metrics,
		TopologyMeasure: func() string {
			return formatHopMatrix(nw)
		},
	})
	if err != nil {
		if x.j != nil {
			x.j.Close()
		}
		return nil, err
	}
	x.Master = m
	return x, nil
}

// Close releases resources held outside the scheduler (currently the
// write-ahead journal's file handle). Safe to call on any Experiment.
func (x *Experiment) Close() error {
	return x.j.Close()
}

// Journal returns the open write-ahead journal (nil unless Options.Journal).
func (x *Experiment) Journal() *store.Journal { return x.j }

// Run executes the experiment to completion and returns the report.
func (x *Experiment) Run() (*master.Report, error) {
	var rep *master.Report
	var err error
	x.S.Go("experimaster", func() {
		rep, err = x.Master.RunAll()
	})
	if rerr := x.S.Run(); rerr != nil {
		return nil, rerr
	}
	return rep, err
}

// Finalize conditions the level-2 store into the level-3 database.
func (x *Experiment) Finalize() (*store.ExperimentDB, error) {
	return x.Master.Finalize()
}

// Store returns the level-2 store (nil when StoreDir was empty).
func (x *Experiment) Store() *store.RunStore { return x.st }

// platformNodeIDs derives the platform node ids: the platform mapping if
// present, else the abstract node ids directly.
func platformNodeIDs(e *desc.Experiment) (actors, env []string) {
	if len(e.Platform.Actors) > 0 {
		for _, n := range e.Platform.Actors {
			actors = append(actors, n.ID)
		}
		for _, n := range e.Platform.Env {
			env = append(env, n.ID)
		}
		return actors, env
	}
	actors = append(actors, e.AbstractNodes...)
	env = append(env, e.EnvironmentNodes...)
	return actors, env
}

// wireTopology connects the given nodes per the options.
func wireTopology(nw *netem.Network, ids []string, opts Options, seed int64) error {
	lp := opts.Link
	if lp == (netem.LinkParams{}) {
		lp = netem.DefaultLink()
	}
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	switch opts.Topology {
	case TopoFull, "":
		for i := range sorted {
			for j := i + 1; j < len(sorted); j++ {
				nw.AddLink(netem.NodeID(sorted[i]), netem.NodeID(sorted[j]), lp)
			}
		}
	case TopoChain:
		for i := 0; i+1 < len(ids); i++ {
			nw.AddLink(netem.NodeID(ids[i]), netem.NodeID(ids[i+1]), lp)
		}
	case TopoGrid:
		w := opts.GridWidth
		if w <= 0 {
			return fmt.Errorf("core: grid topology needs GridWidth")
		}
		for i := range ids {
			if (i+1)%w != 0 && i+1 < len(ids) {
				nw.AddLink(netem.NodeID(ids[i]), netem.NodeID(ids[i+1]), lp)
			}
			if i+w < len(ids) {
				nw.AddLink(netem.NodeID(ids[i]), netem.NodeID(ids[i+w]), lp)
			}
		}
	case TopoGeometric:
		r := opts.GeoRadius
		if r == 0 {
			r = 0.4
		}
		rng := rand.New(rand.NewSource(seed ^ 0x6e0))
		xs := make([]float64, len(sorted))
		ys := make([]float64, len(sorted))
		for i := range sorted {
			xs[i] = rng.Float64()
			ys[i] = rng.Float64()
		}
		for {
			for i := range sorted {
				for j := i + 1; j < len(sorted); j++ {
					dx, dy := xs[i]-xs[j], ys[i]-ys[j]
					if dx*dx+dy*dy <= r*r && nw.Link(netem.NodeID(sorted[i]), netem.NodeID(sorted[j])) == nil {
						nw.AddLink(netem.NodeID(sorted[i]), netem.NodeID(sorted[j]), lp)
					}
				}
			}
			if connected(nw, sorted) {
				break
			}
			r *= 1.25
		}
	default:
		return fmt.Errorf("core: unknown topology %q", opts.Topology)
	}
	return nil
}

func connected(nw *netem.Network, ids []string) bool {
	for _, b := range ids[1:] {
		if nw.HopCount(netem.NodeID(ids[0]), netem.NodeID(b)) < 0 {
			return false
		}
	}
	return true
}

// formatHopMatrix serializes the hop-count measurement (§IV-B4).
func formatHopMatrix(nw *netem.Network) string {
	m := nw.HopMatrix()
	ids := nw.Nodes()
	out := ""
	for _, a := range ids {
		for _, b := range ids {
			if a >= b {
				continue
			}
			out += fmt.Sprintf("%s %s %d\n", a, b, m[a][b])
		}
	}
	return out
}

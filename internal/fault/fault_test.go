package fault

import (
	"testing"
	"time"

	"excovery/internal/netem"
	"excovery/internal/sched"
)

func twoNodes(t *testing.T) (*sched.Scheduler, *netem.Network, *netem.Node, *netem.Node) {
	t.Helper()
	s := sched.NewVirtual()
	nw := netem.New(s, 5)
	a := nw.AddNode("a", netem.NodeParams{})
	b := nw.AddNode("b", netem.NodeParams{})
	nw.AddLink("a", "b", netem.LinkParams{Delay: time.Millisecond})
	return s, nw, a, b
}

func TestMessageLossFullDrop(t *testing.T) {
	s, _, a, b := twoNodes(t)
	recv := 0
	b.SetHandler(func(p *netem.Packet) { recv++ })
	s.Go("t", func() {
		inj, err := NewMessageLoss(a, 1.0, DirTx, "sd", 1)
		if err != nil {
			t.Fatal(err)
		}
		inj.Start()
		if !inj.Active() {
			t.Error("not active after Start")
		}
		a.Send(netem.Unicast("b"), "sd", nil)
		a.Send(netem.Unicast("b"), "traffic", nil) // other proto unaffected
		s.Sleep(50 * time.Millisecond)
		inj.Stop()
		inj.Stop() // idempotent
		a.Send(netem.Unicast("b"), "sd", nil)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if recv != 2 {
		t.Fatalf("recv = %d, want 2 (traffic + post-stop sd)", recv)
	}
}

func TestMessageLossProbabilistic(t *testing.T) {
	s, _, a, b := twoNodes(t)
	recv := 0
	b.SetHandler(func(p *netem.Packet) { recv++ })
	s.Go("t", func() {
		inj, _ := NewMessageLoss(a, 0.5, DirBoth, "sd", 1)
		inj.Start()
		for i := 0; i < 400; i++ {
			a.Send(netem.Unicast("b"), "sd", nil)
			s.Sleep(time.Millisecond)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if recv < 120 || recv > 280 {
		t.Fatalf("recv = %d of 400 at 50%% loss", recv)
	}
}

func TestMessageLossValidation(t *testing.T) {
	_, _, a, _ := twoNodes(t)
	if _, err := NewMessageLoss(a, 1.5, DirTx, "sd", 1); err == nil {
		t.Fatal("accepted probability > 1")
	}
	if _, err := NewMessageLoss(a, 0.5, "sideways", "sd", 1); err == nil {
		t.Fatal("accepted bad direction")
	}
	if _, err := NewMessageDelay(a, -time.Second, DirTx, "sd", 1); err == nil {
		t.Fatal("accepted negative delay")
	}
}

func TestMessageDelayAddsLatency(t *testing.T) {
	s, _, a, b := twoNodes(t)
	var recvAt time.Time
	b.SetHandler(func(p *netem.Packet) { recvAt = s.Now() })
	s.Go("t", func() {
		inj, _ := NewMessageDelay(a, 100*time.Millisecond, DirTx, "sd", 1)
		inj.Start()
		start := s.Now()
		a.Send(netem.Unicast("b"), "sd", nil)
		s.Sleep(time.Second)
		if lat := recvAt.Sub(start); lat < 100*time.Millisecond || lat > 110*time.Millisecond {
			t.Errorf("latency = %v, want ≈101ms", lat)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPathLossOnlyAffectsPeer(t *testing.T) {
	s := sched.NewVirtual()
	nw := netem.New(s, 5)
	ids := netem.BuildFull(nw, "n", 3, netem.NodeParams{}, netem.LinkParams{Delay: time.Millisecond})
	recv := map[netem.NodeID]int{}
	for _, id := range ids {
		id := id
		nw.Node(id).SetHandler(func(p *netem.Packet) { recv[id]++ })
	}
	s.Go("t", func() {
		inj, _ := NewPathLoss(nw.Node(ids[0]), ids[1], 1.0, DirBoth, "sd", 1)
		inj.Start()
		nw.Node(ids[0]).Send(netem.Unicast(ids[1]), "sd", nil)
		nw.Node(ids[0]).Send(netem.Unicast(ids[2]), "sd", nil)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if recv[ids[1]] != 0 || recv[ids[2]] != 1 {
		t.Fatalf("recv = %v", recv)
	}
}

func TestPathDelaySelective(t *testing.T) {
	s := sched.NewVirtual()
	nw := netem.New(s, 5)
	ids := netem.BuildFull(nw, "n", 3, netem.NodeParams{}, netem.LinkParams{Delay: time.Millisecond})
	at := map[netem.NodeID]time.Time{}
	for _, id := range ids {
		id := id
		nw.Node(id).SetHandler(func(p *netem.Packet) { at[id] = s.Now() })
	}
	s.Go("t", func() {
		inj, _ := NewPathDelay(nw.Node(ids[0]), ids[1], 200*time.Millisecond, DirTx, "sd", 1)
		inj.Start()
		nw.Node(ids[0]).Send(netem.Unicast(ids[1]), "sd", nil)
		nw.Node(ids[0]).Send(netem.Unicast(ids[2]), "sd", nil)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at[ids[1]].Sub(at[ids[2]]) < 150*time.Millisecond {
		t.Fatalf("path delay not selective: %v vs %v", at[ids[1]], at[ids[2]])
	}
}

func TestInterfaceFaultDirections(t *testing.T) {
	for _, dir := range []Direction{DirRx, DirTx, DirBoth} {
		s, _, a, b := twoNodes(t)
		na, nb := 0, 0
		a.SetHandler(func(p *netem.Packet) { na++ })
		b.SetHandler(func(p *netem.Packet) { nb++ })
		dir := dir
		s.Go("t", func() {
			inj, err := NewInterfaceFault(a, dir, 1)
			if err != nil {
				t.Fatal(err)
			}
			inj.Start()
			a.Send(netem.Unicast("b"), "sd", nil) // tx from faulted node
			b.Send(netem.Unicast("a"), "sd", nil) // rx at faulted node
			s.Sleep(100 * time.Millisecond)
			inj.Stop()
			a.Send(netem.Unicast("b"), "sd", nil)
			b.Send(netem.Unicast("a"), "sd", nil)
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		switch dir {
		case DirRx:
			if na != 1 || nb != 2 {
				t.Errorf("%s: na=%d nb=%d, want 1/2", dir, na, nb)
			}
		case DirTx:
			if na != 2 || nb != 1 {
				t.Errorf("%s: na=%d nb=%d, want 2/1", dir, na, nb)
			}
		case DirBoth:
			if na != 1 || nb != 1 {
				t.Errorf("%s: na=%d nb=%d, want 1/1", dir, na, nb)
			}
		}
	}
}

func TestDirRandomResolvesDeterministically(t *testing.T) {
	_, _, a, _ := twoNodes(t)
	i1, err := NewInterfaceFault(a, DirRandom, 42)
	if err != nil {
		t.Fatal(err)
	}
	i2, _ := NewInterfaceFault(a, DirRandom, 42)
	// Same seed, same resolution: both must behave identically. Compare
	// via the concrete struct.
	f1 := i1.(*ifaceFault)
	f2 := i2.(*ifaceFault)
	if f1.dir != f2.dir {
		t.Fatalf("same seed resolved differently: %v vs %v", f1.dir, f2.dir)
	}
}

func TestApplyTimingBlock(t *testing.T) {
	s, _, a, b := twoNodes(t)
	recv := 0
	b.SetHandler(func(p *netem.Packet) { recv++ })
	var events []string
	s.Go("t", func() {
		inj, _ := NewMessageLoss(a, 1.0, DirTx, "sd", 1)
		applied := Apply(s, inj, Timing{Duration: 10 * time.Second, Rate: 0.5, Seed: 3},
			func(what string) { events = append(events, what) })
		// The active block covers 5s somewhere within [0,10s].
		if applied.StopAt.Sub(applied.StartAt) != 5*time.Second {
			t.Errorf("block length = %v", applied.StopAt.Sub(applied.StartAt))
		}
		if applied.StartAt.Before(s.Now()) || applied.StopAt.After(s.Now().Add(10*time.Second)) {
			t.Errorf("block [%v,%v] outside window", applied.StartAt, applied.StopAt)
		}
		// Probe every 100ms; sends during the block are dropped.
		for i := 0; i < 100; i++ {
			a.Send(netem.Unicast("b"), "sd", nil)
			s.Sleep(100 * time.Millisecond)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 100 probes over 10s, 50 fall into the 5s block (±2 boundary).
	if recv < 47 || recv > 53 {
		t.Fatalf("recv = %d, want ≈50", recv)
	}
	if len(events) != 2 || events[0] != "start" || events[1] != "stop" {
		t.Fatalf("events = %v", events)
	}
}

func TestApplyWithoutTimingStartsImmediately(t *testing.T) {
	s, _, a, _ := twoNodes(t)
	s.Go("t", func() {
		inj, _ := NewMessageLoss(a, 1.0, DirTx, "sd", 1)
		applied := Apply(s, inj, Timing{}, nil)
		s.Sleep(time.Millisecond)
		if !inj.Active() {
			t.Error("fault not active after untimed Apply")
		}
		s.Sleep(time.Hour)
		if !inj.Active() {
			t.Error("untimed fault stopped by itself")
		}
		applied.Cancel(inj)
		if inj.Active() {
			t.Error("Cancel did not stop the fault")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTrafficGeneratorLoad(t *testing.T) {
	s := sched.NewVirtual()
	nw := netem.New(s, 5)
	ids := netem.BuildFull(nw, "e", 4, netem.NodeParams{}, netem.LinkParams{Delay: time.Millisecond})
	for _, id := range ids {
		nw.Node(id).SetHandler(func(p *netem.Packet) {})
	}
	var tr *Traffic
	s.Go("t", func() {
		var err error
		tr, err = StartTraffic(s, nw, ids, TrafficConfig{
			Pairs: 2, BwKbps: 100, Seed: 7, PacketSize: 500,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Sleep(10 * time.Second)
		tr.Stop()
	})
	if err := s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	// 2 pairs × 2 directions × 100 kbit/s over 10 s = 2,000,000 bits /
	// 4000 bits per packet = 500 packets (±10%).
	if tr.Sent() < 450 || tr.Sent() > 550 {
		t.Fatalf("sent %d packets, want ≈500", tr.Sent())
	}
}

func TestTrafficStopsCleanly(t *testing.T) {
	s := sched.NewVirtual()
	nw := netem.New(s, 5)
	ids := netem.BuildFull(nw, "e", 2, netem.NodeParams{}, netem.LinkParams{Delay: time.Millisecond})
	for _, id := range ids {
		nw.Node(id).SetHandler(func(p *netem.Packet) {})
	}
	var sentAtStop uint64
	var tr *Traffic
	s.Go("t", func() {
		tr, _ = StartTraffic(s, nw, ids, TrafficConfig{Pairs: 1, BwKbps: 50, Seed: 1})
		s.Sleep(time.Second)
		tr.Stop()
		sentAtStop = tr.Sent()
		s.Sleep(10 * time.Second)
	})
	if err := s.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	// At most one more packet per direction can slip out after Stop.
	if tr.Sent() > sentAtStop+2 {
		t.Fatalf("traffic continued after Stop: %d → %d", sentAtStop, tr.Sent())
	}
}

func TestTrafficPairSelectionDeterministicAndSwitching(t *testing.T) {
	candidates := []netem.NodeID{"a", "b", "c", "d", "e"}
	base := TrafficConfig{Pairs: 3, BwKbps: 10, Seed: 11, SwitchAmount: 1, SwitchSeed: 22}
	p0a, err := pickPairs(candidates, base)
	if err != nil {
		t.Fatal(err)
	}
	p0b, _ := pickPairs(candidates, base)
	if fmtPairs(p0a) != fmtPairs(p0b) {
		t.Fatal("same config produced different pairs")
	}
	run1 := base
	run1.Run = 1
	p1, _ := pickPairs(candidates, run1)
	if fmtPairs(p0a) == fmtPairs(p1) {
		t.Fatal("switching did not change pairs between runs")
	}
	// Exactly one pair differs after one switch of amount 1 (the switch
	// may coincidentally redraw the same pair, so allow ≤ 1).
	diff := 0
	for i := range p0a {
		if p0a[i] != p1[i] {
			diff++
		}
	}
	if diff > 1 {
		t.Fatalf("%d pairs changed, want ≤ 1", diff)
	}
}

func fmtPairs(ps [][2]netem.NodeID) string {
	out := ""
	for _, p := range ps {
		out += string(p[0]) + "-" + string(p[1]) + ";"
	}
	return out
}

func TestTrafficValidation(t *testing.T) {
	s := sched.NewVirtual()
	nw := netem.New(s, 5)
	netem.BuildFull(nw, "e", 2, netem.NodeParams{}, netem.LinkParams{})
	if _, err := StartTraffic(s, nw, nw.Nodes(), TrafficConfig{Pairs: 0, BwKbps: 10}); err == nil {
		t.Fatal("accepted zero pairs")
	}
	if _, err := StartTraffic(s, nw, nw.Nodes(), TrafficConfig{Pairs: 1, BwKbps: 0}); err == nil {
		t.Fatal("accepted zero bandwidth")
	}
	if _, err := StartTraffic(s, nw, nw.Nodes()[:1], TrafficConfig{Pairs: 1, BwKbps: 10}); err == nil {
		t.Fatal("accepted single candidate")
	}
}

func TestDropAll(t *testing.T) {
	s, nw, a, b := twoNodes(t)
	recv := 0
	b.SetHandler(func(p *netem.Packet) { recv++ })
	s.Go("t", func() {
		d := NewDropAll(nw, "sd")
		d.Start()
		if !d.Active() {
			t.Error("not active")
		}
		d.Start() // idempotent
		a.Send(netem.Unicast("b"), "sd", nil)
		s.Sleep(50 * time.Millisecond)
		d.Stop()
		if d.Active() {
			t.Error("still active after Stop")
		}
		a.Send(netem.Unicast("b"), "sd", nil)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if recv != 1 {
		t.Fatalf("recv = %d, want 1", recv)
	}
	if a.RuleCount() != 0 || b.RuleCount() != 0 {
		t.Fatal("rules leaked after Stop")
	}
}

package fault

// Tests for the chaos injections, the Apply timing edge cases and the
// scenario DSL (flap, ramp, partition).

import (
	"testing"
	"time"

	"excovery/internal/netem"
	"excovery/internal/sched"
)

func TestApplyRateOneStopsAtWindowEnd(t *testing.T) {
	s, _, a, _ := twoNodes(t)
	var events []string
	var stopAt time.Time
	s.Go("t", func() {
		inj, err := NewMessageLoss(a, 1, DirBoth, "sd", 1)
		if err != nil {
			t.Fatal(err)
		}
		start := s.Now()
		ap := Apply(s, inj, Timing{Duration: 10 * time.Second, Rate: 1, Seed: 42},
			func(what string) {
				events = append(events, what)
				if what == "stop" {
					stopAt = s.Now()
				}
			})
		// Zero slack: the block covers the whole window.
		if !ap.StartAt.Equal(start) || !ap.StopAt.Equal(start.Add(10*time.Second)) {
			t.Errorf("block [%v, %v], want whole window", ap.StartAt, ap.StopAt)
		}
		s.Sleep(10*time.Second + time.Millisecond)
		if inj.Active() {
			t.Error("rate=1 fault still active after window end")
		}
		if stopAt.Sub(start) != 10*time.Second {
			t.Errorf("stopped at +%v, want +10s", stopAt.Sub(start))
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0] != "start" || events[1] != "stop" {
		t.Fatalf("events = %v, want [start stop]", events)
	}
}

func TestApplyRateAboveOneClamps(t *testing.T) {
	s, _, a, _ := twoNodes(t)
	s.Go("t", func() {
		inj, _ := NewMessageLoss(a, 1, DirBoth, "sd", 1)
		ap := Apply(s, inj, Timing{Duration: time.Second, Rate: 2.5, Seed: 1}, nil)
		if got := ap.StopAt.Sub(ap.StartAt); got != time.Second {
			t.Errorf("active block %v, want 1s", got)
		}
		s.Sleep(2 * time.Second)
		if inj.Active() {
			t.Error("still active")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyCancelBeforeStart(t *testing.T) {
	s, _, a, _ := twoNodes(t)
	var events []string
	s.Go("t", func() {
		inj, _ := NewMessageLoss(a, 1, DirBoth, "sd", 1)
		ap := Apply(s, inj, Timing{Duration: 10 * time.Second, Rate: 0.5, Seed: 7},
			func(what string) { events = append(events, what) })
		// Cancel before yielding: no timer has fired yet, even one at
		// offset zero.
		ap.Cancel(inj)
		s.Sleep(15 * time.Second)
		if inj.Active() {
			t.Error("canceled fault became active")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("events = %v, want none", events)
	}
}

func TestApplyCancelAfterStart(t *testing.T) {
	s, _, a, _ := twoNodes(t)
	var events []string
	s.Go("t", func() {
		inj, _ := NewMessageLoss(a, 1, DirBoth, "sd", 1)
		ap := Apply(s, inj, Timing{Duration: 10 * time.Second, Rate: 1, Seed: 7},
			func(what string) { events = append(events, what) })
		s.Sleep(time.Second)
		if !inj.Active() {
			t.Fatal("fault not active after start fired")
		}
		ap.Cancel(inj)
		if inj.Active() {
			t.Error("fault active after Cancel")
		}
		s.Sleep(15 * time.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// The scheduled stop was canceled, so only the start notified.
	if len(events) != 1 || events[0] != "start" {
		t.Fatalf("events = %v, want [start]", events)
	}
}

func TestApplyBlockDeterministicAcrossSeeds(t *testing.T) {
	block := func(seed int64) (time.Time, time.Time) {
		s, _, a, _ := twoNodes(t)
		var ap *Applied
		s.Go("t", func() {
			inj, _ := NewMessageLoss(a, 1, DirBoth, "sd", 1)
			ap = Apply(s, inj, Timing{Duration: 20 * time.Second, Rate: 0.3, Seed: seed}, nil)
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return ap.StartAt, ap.StopAt
	}
	a1, o1 := block(99)
	a2, o2 := block(99)
	if !a1.Equal(a2) || !o1.Equal(o2) {
		t.Fatalf("same seed, different blocks: [%v %v] vs [%v %v]", a1, o1, a2, o2)
	}
	a3, _ := block(100)
	if a1.Equal(a3) {
		t.Log("different seeds produced equal offsets (possible, but suspicious)")
	}
}

// TestInjectionRandomnessIndependentOfNodeStream pins the satellite fix:
// a fault's drop pattern is a function of its own seed only, so it stays
// identical even when the surrounding network (and its node rng streams)
// differs.
func TestInjectionRandomnessIndependentOfNodeStream(t *testing.T) {
	pattern := func(netSeed int64) []bool {
		s := sched.NewVirtual()
		nw := netem.New(s, netSeed)
		a := nw.AddNode("a", netem.NodeParams{})
		b := nw.AddNode("b", netem.NodeParams{})
		// Jitter forces node-rng draws, desynchronizing the node streams
		// across network seeds.
		nw.AddLink("a", "b", netem.LinkParams{Delay: time.Millisecond, Jitter: 100 * time.Microsecond})
		got := make([]bool, 50)
		b.SetHandler(func(p *netem.Packet) { got[p.Payload[0]] = true })
		s.Go("t", func() {
			inj, err := NewMessageLoss(a, 0.5, DirTx, "sd", 1234)
			if err != nil {
				t.Fatal(err)
			}
			inj.Start()
			for i := 0; i < 50; i++ {
				a.Send(netem.Unicast("b"), "sd", []byte{byte(i)})
				s.Sleep(5 * time.Millisecond)
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	p1 := pattern(5)
	p2 := pattern(987654)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("packet %d: delivered=%v vs %v — fault randomness leaked from node stream", i, p1[i], p2[i])
		}
	}
}

func TestDirRandomDeterministicForChaosKinds(t *testing.T) {
	_, _, a, _ := twoNodes(t)
	mk := func(seed int64) []netem.Direction {
		c1, _ := NewMessageCorrupt(a, 0.5, DirRandom, "sd", seed)
		d1, _ := NewMessageDuplicate(a, 0.5, DirRandom, "sd", seed)
		r1, _ := NewMessageReorder(a, 0.5, 0.2, time.Millisecond, DirRandom, "sd", seed)
		l1, _ := NewRateLimit(a, 64000, 0, DirRandom, "sd", seed)
		var dirs []netem.Direction
		for _, inj := range []Injection{c1, d1, r1, l1} {
			dirs = append(dirs, inj.(*ruleFault).rule.Dir)
		}
		return dirs
	}
	x, y := mk(7), mk(7)
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("kind %d: dir %v vs %v for same seed", i, x[i], y[i])
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	_, _, a, _ := twoNodes(t)
	if _, err := NewMessageCorrupt(a, 0, DirBoth, "sd", 1); err == nil {
		t.Error("corrupt prob 0 accepted")
	}
	if _, err := NewMessageDuplicate(a, 1.5, DirBoth, "sd", 1); err == nil {
		t.Error("duplicate prob 1.5 accepted")
	}
	if _, err := NewMessageReorder(a, 0.5, -0.1, time.Millisecond, DirBoth, "sd", 1); err == nil {
		t.Error("negative correlation accepted")
	}
	if _, err := NewMessageReorder(a, 0.5, 0, 0, DirBoth, "sd", 1); err == nil {
		t.Error("zero reorder delay accepted")
	}
	if _, err := NewRateLimit(a, 0, 0, DirBoth, "sd", 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewNodeStress(a, -1); err == nil {
		t.Error("negative stress accepted")
	}
}

func TestProcFaultsToggle(t *testing.T) {
	s, _, a, _ := twoNodes(t)
	s.Go("t", func() {
		kill := NewNodeKill(a)
		kill.Start()
		if !a.Killed() || !kill.Active() {
			t.Error("kill did not take effect")
		}
		kill.Stop()
		if a.Killed() {
			t.Error("node still killed after Stop")
		}
		pause := NewNodePause(a)
		pause.Start()
		if !a.Paused() {
			t.Error("pause did not take effect")
		}
		pause.Stop()
		stress, err := NewNodeStress(a, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		stress.Start()
		if a.Stress() != 1.5 {
			t.Errorf("stress = %v", a.Stress())
		}
		stress.Stop()
		if a.Stress() != 0 {
			t.Error("stress survived Stop")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFlapTogglesInjection(t *testing.T) {
	s, _, a, _ := twoNodes(t)
	var events []string
	s.Go("t", func() {
		inj, _ := NewInterfaceFault(a, DirBoth, 1)
		sc, err := Flap(s, inj, time.Second, 0.5, 3, func(what string) { events = append(events, what) })
		if err != nil {
			t.Fatal(err)
		}
		_ = sc
		// Sample mid-active (k·period + 250ms) and mid-inactive
		// (k·period + 750ms) in each cycle.
		s.Sleep(250 * time.Millisecond)
		for k := 0; k < 3; k++ {
			if !inj.Active() {
				t.Errorf("cycle %d: inactive during duty window", k)
			}
			s.Sleep(500 * time.Millisecond)
			if inj.Active() {
				t.Errorf("cycle %d: active outside duty window", k)
			}
			s.Sleep(500 * time.Millisecond)
		}
		s.Sleep(2 * time.Second)
		if inj.Active() {
			t.Error("active after last cycle")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 {
		t.Fatalf("%d transitions, want 6 (3 cycles × start+stop)", len(events))
	}
}

func TestFlapValidation(t *testing.T) {
	s, _, a, _ := twoNodes(t)
	inj, _ := NewInterfaceFault(a, DirBoth, 1)
	if _, err := Flap(s, inj, 0, 0.5, 1, nil); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := Flap(s, inj, time.Second, 0, 1, nil); err == nil {
		t.Error("zero duty accepted")
	}
	if _, err := Flap(s, inj, time.Second, 1.5, 1, nil); err == nil {
		t.Error("duty > 1 accepted")
	}
	if _, err := Flap(s, inj, time.Second, 0.5, 0, nil); err == nil {
		t.Error("zero cycles accepted")
	}
}

func TestRampSweepsAndEnds(t *testing.T) {
	s, _, a, _ := twoNodes(t)
	type step struct {
		i     int
		level float64
	}
	var steps []step
	s.Go("t", func() {
		mk := func(level float64) (Injection, error) {
			return NewMessageLoss(a, level, DirBoth, "sd", 1)
		}
		_, err := Ramp(s, mk, 0.2, 0.8, 3, time.Second,
			func(i int, level float64) { steps = append(steps, step{i, level}) })
		if err != nil {
			t.Fatal(err)
		}
		s.Sleep(500 * time.Millisecond)
		if a.RuleCount() != 1 {
			t.Errorf("step 0: %d rules installed", a.RuleCount())
		}
		s.Sleep(3 * time.Second)
		if a.RuleCount() != 0 {
			t.Errorf("after ramp end: %d rules still installed", a.RuleCount())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []step{{0, 0.2}, {1, 0.5}, {2, 0.8}, {3, 0.8}}
	if len(steps) != len(want) {
		t.Fatalf("steps = %v", steps)
	}
	for i := range want {
		if steps[i].i != want[i].i || !close2(steps[i].level, want[i].level) {
			t.Fatalf("step %d = %+v, want %+v", i, steps[i], want[i])
		}
	}
}

func close2(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestRampConstructorErrorsSurfaceEarly(t *testing.T) {
	s, _, a, _ := twoNodes(t)
	mk := func(level float64) (Injection, error) {
		return NewMessageLoss(a, level, DirBoth, "sd", 1)
	}
	// Level 1.5 is out of range for message loss: the ramp must refuse
	// before scheduling anything.
	if _, err := Ramp(s, mk, 0.5, 1.5, 3, time.Second, nil); err == nil {
		t.Error("out-of-range ramp target accepted")
	}
	if _, err := Ramp(s, mk, 0, 1, 0, time.Second, nil); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := Ramp(s, mk, 0, 1, 3, 0, nil); err == nil {
		t.Error("zero step duration accepted")
	}
}

func TestRampCancelStopsCurrent(t *testing.T) {
	s, _, a, _ := twoNodes(t)
	s.Go("t", func() {
		mk := func(level float64) (Injection, error) {
			return NewMessageLoss(a, level, DirBoth, "sd", 1)
		}
		sc, err := Ramp(s, mk, 0.2, 0.8, 3, time.Second, nil)
		if err != nil {
			t.Fatal(err)
		}
		s.Sleep(1500 * time.Millisecond) // mid step 1
		sc.Cancel()
		if a.RuleCount() != 0 {
			t.Errorf("%d rules after Cancel", a.RuleCount())
		}
		s.Sleep(5 * time.Second)
		if a.RuleCount() != 0 {
			t.Errorf("canceled ramp scheduled more steps")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionCutsAndHeals(t *testing.T) {
	s := sched.NewVirtual()
	nw := netem.New(s, 1)
	a := nw.AddNode("a", netem.NodeParams{})
	nw.AddNode("b", netem.NodeParams{})
	nw.AddNode("c", netem.NodeParams{})
	for _, pair := range [][2]netem.NodeID{{"a", "b"}, {"b", "c"}, {"a", "c"}} {
		nw.AddLink(pair[0], pair[1], netem.LinkParams{Delay: time.Millisecond})
	}
	nw.Join("svc", "a")
	nw.Join("svc", "b")
	nw.Join("svc", "c")
	recv := map[netem.NodeID]int{}
	for _, id := range []netem.NodeID{"a", "b", "c"} {
		id := id
		nw.Node(id).SetHandler(func(p *netem.Packet) { recv[id]++ })
	}
	s.Go("t", func() {
		part, err := NewPartition(nw, []netem.NodeID{"a"}, []netem.NodeID{"b"})
		if err != nil {
			t.Fatal(err)
		}
		part.Start()
		// Unicast across the cut dies; unicast to the unpartitioned node
		// survives.
		a.Send(netem.Unicast("b"), "t", nil)
		a.Send(netem.Unicast("c"), "t", nil)
		// Flood from a: c receives directly AND would relay to b — the
		// relayed copy must die at b's rx rule.
		a.Send(netem.Multicast("svc"), "t", nil)
		s.Sleep(100 * time.Millisecond)
		if recv["b"] != 0 {
			t.Errorf("b received %d packets across the cut", recv["b"])
		}
		if recv["c"] != 2 {
			t.Errorf("c received %d, want 2 (unicast + flood)", recv["c"])
		}
		part.Stop()
		if part.Active() {
			t.Error("partition active after heal")
		}
		a.Send(netem.Unicast("b"), "t", nil)
		s.Sleep(100 * time.Millisecond)
		if recv["b"] != 1 {
			t.Errorf("b received %d after heal, want 1", recv["b"])
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionValidation(t *testing.T) {
	_, nw, _, _ := twoNodes(t)
	if _, err := NewPartition(nw, nil, []netem.NodeID{"b"}); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := NewPartition(nw, []netem.NodeID{"a"}, []netem.NodeID{"a"}); err == nil {
		t.Error("overlapping groups accepted")
	}
	if _, err := NewPartition(nw, []netem.NodeID{"a"}, []netem.NodeID{"nope"}); err == nil {
		t.Error("unknown node accepted")
	}
}

// TestPartitionHealObservesTopologyNextDelivery is the fan-out snapshot
// regression for the partition-heal scenario: when the cut is a real
// topology change (links removed, then restored), the precomputed
// neighbor/route snapshots must be invalidated so the very next delivery
// after each transition observes the new topology — no stale fan-out.
func TestPartitionHealObservesTopologyNextDelivery(t *testing.T) {
	s := sched.NewVirtual()
	nw := netem.New(s, 5)
	for _, id := range []netem.NodeID{"a", "b", "c"} {
		nw.AddNode(id, netem.NodeParams{})
	}
	nw.AddLink("a", "b", netem.LinkParams{Delay: time.Millisecond})
	nw.AddLink("b", "c", netem.LinkParams{Delay: time.Millisecond})
	nw.Join("svc", "c")
	recv := 0
	nw.Node("c").SetHandler(func(p *netem.Packet) { recv++ })
	a := nw.Node("a")
	s.Go("t", func() {
		a.Send(netem.Multicast("svc"), "sd", nil)
		s.Sleep(50 * time.Millisecond)
		if recv != 1 {
			t.Errorf("pre-partition deliveries = %d, want 1", recv)
		}
		// Partition: cut the only path mid-mesh.
		nw.RemoveLink("a", "b")
		a.Send(netem.Multicast("svc"), "sd", nil)
		s.Sleep(50 * time.Millisecond)
		if recv != 1 {
			t.Errorf("deliveries across the cut = %d, want still 1", recv)
		}
		// Heal: the very next flood must traverse the restored link.
		nw.AddLink("a", "b", netem.LinkParams{Delay: time.Millisecond})
		a.Send(netem.Multicast("svc"), "sd", nil)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if recv != 2 {
		t.Fatalf("deliveries after heal = %d, want 2 (snapshot must refresh on the next delivery)", recv)
	}
}

package fault

import (
	"excovery/internal/failpoint"
	"excovery/internal/netem"
)

// NewRPCPartition extends the partition vocabulary from the emulated
// platform to the control plane: the netem-based injections of this
// package cut links between emulated nodes, but the chaos the
// self-healing fleet (DESIGN.md §14) must survive lives one layer up, on
// the real XML-RPC channel between master, registry and node hosts. Start
// installs a drop-everything rule at each given failpoint registry's
// server-receive site (requests vanish before the handler, exactly like a
// partitioned network), Stop heals by clearing the site. Composable with
// the scenario machinery (Scenario, Flap) like any other injection.
//
// The heal clears the whole SiteServerRecv rule list of each registry, so
// do not combine it with test wirings that install their own rules at
// that site on the same registry.
func NewRPCPartition(regs ...*failpoint.Registry) Injection {
	return &rpcPartition{regs: regs}
}

type rpcPartition struct {
	regs   []*failpoint.Registry
	active bool
}

func (p *rpcPartition) Kind() string         { return "rpc_partition" }
func (p *rpcPartition) Target() netem.NodeID { return netem.NodeID("control-plane") }
func (p *rpcPartition) Active() bool         { return p.active }

func (p *rpcPartition) Start() {
	if p.active {
		return
	}
	p.active = true
	for _, r := range p.regs {
		r.Enable(failpoint.SiteServerRecv, failpoint.Rule{Prob: 1, Act: failpoint.Drop})
	}
}

func (p *rpcPartition) Stop() {
	if !p.active {
		return
	}
	p.active = false
	for _, r := range p.regs {
		r.Disable(failpoint.SiteServerRecv)
	}
}

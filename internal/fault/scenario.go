// Scenario composition: a small DSL that sequences fault activations over
// virtual time (DESIGN.md §12). Scenarios build on the same scheduler
// machinery as Timing/Apply but express richer temporal shapes — flapping
// (periodic on/off), ramps (stepwise intensity sweeps) and network
// partitions with explicit healing. All schedules are fixed at
// construction, so a scenario is exactly reproducible from the
// description it came from.
package fault

import (
	"fmt"
	"time"

	"excovery/internal/netem"
	"excovery/internal/sched"
)

// Scenario is a scheduled composition of fault transitions. Cancel stops
// every pending transition and deactivates whatever is currently active;
// it is idempotent and safe to call from run cleanup.
type Scenario struct {
	timers []*sched.Timer
	stop   func()
}

// Cancel aborts the scenario: pending transitions are dropped and the
// active injection (if any) is deactivated.
func (sc *Scenario) Cancel() {
	for _, t := range sc.timers {
		t.Stop()
	}
	sc.timers = nil
	if sc.stop != nil {
		sc.stop()
	}
}

// Flap toggles an injection periodically: for cycles periods of the given
// length, the fault is active during the first duty fraction of each
// period (flap(period, duty) of the DSL). The first activation fires at
// virtual-time offset zero, i.e. on the next scheduler step. onEvent, if
// non-nil, receives "start"/"stop" per transition.
func Flap(s *sched.Scheduler, inj Injection, period time.Duration, duty float64, cycles int, onEvent func(string)) (*Scenario, error) {
	if period <= 0 {
		return nil, fmt.Errorf("fault: flap period must be positive")
	}
	if duty <= 0 || duty > 1 {
		return nil, fmt.Errorf("fault: flap duty %v out of (0,1]", duty)
	}
	if cycles < 1 {
		return nil, fmt.Errorf("fault: flap needs at least one cycle")
	}
	notify := func(what string) {
		if onEvent != nil {
			onEvent(what)
		}
	}
	active := time.Duration(float64(period) * duty)
	sc := &Scenario{stop: inj.Stop}
	for k := 0; k < cycles; k++ {
		at := time.Duration(k) * period
		sc.timers = append(sc.timers,
			s.ScheduleFunc(at, "flap-start "+inj.Kind(), func() {
				inj.Start()
				notify("start")
			}),
			// With duty 1 the stop coincides with the next cycle's start;
			// creation order makes the stop fire first, so the fault
			// toggles rather than cancels itself.
			s.ScheduleFunc(at+active, "flap-stop "+inj.Kind(), func() {
				inj.Stop()
				notify("stop")
			}))
	}
	return sc, nil
}

// Ramp sweeps a fault's intensity in equal steps (ramp(from, to, steps)
// of the DSL): mk builds the injection for an interpolated level; at each
// step boundary the previous injection stops and the next one starts, and
// after the last step the ramp ends with everything inactive. All
// injections are constructed up front so parameter errors surface before
// anything is scheduled. onEvent, if non-nil, receives each step index
// and level, then (steps, to) when the ramp ends.
func Ramp(s *sched.Scheduler, mk func(level float64) (Injection, error), from, to float64, steps int, stepDur time.Duration, onEvent func(step int, level float64)) (*Scenario, error) {
	if steps < 1 {
		return nil, fmt.Errorf("fault: ramp needs at least one step")
	}
	if stepDur <= 0 {
		return nil, fmt.Errorf("fault: ramp step duration must be positive")
	}
	levels := make([]float64, steps)
	injs := make([]Injection, steps)
	for i := range injs {
		frac := 0.0
		if steps > 1 {
			frac = float64(i) / float64(steps-1)
		}
		levels[i] = from + (to-from)*frac
		inj, err := mk(levels[i])
		if err != nil {
			return nil, fmt.Errorf("fault: ramp step %d (level %v): %w", i, levels[i], err)
		}
		injs[i] = inj
	}
	var cur Injection
	sc := &Scenario{}
	sc.stop = func() {
		if cur != nil {
			cur.Stop()
			cur = nil
		}
	}
	for i := range injs {
		i := i
		sc.timers = append(sc.timers,
			s.ScheduleFunc(time.Duration(i)*stepDur, "ramp-step "+injs[i].Kind(), func() {
				if cur != nil {
					cur.Stop()
				}
				cur = injs[i]
				cur.Start()
				if onEvent != nil {
					onEvent(i, levels[i])
				}
			}))
	}
	sc.timers = append(sc.timers,
		s.ScheduleFunc(time.Duration(steps)*stepDur, "ramp-end "+injs[0].Kind(), func() {
			if cur != nil {
				cur.Stop()
				cur = nil
			}
			if onEvent != nil {
				onEvent(steps, to)
			}
		}))
	return sc, nil
}

// partitionFault splits the network into two groups by dropping every
// packet that crosses the cut. Rules are installed on both sides: peer
// rules match unicast traffic at the origin and any traffic at the
// receiver, so flood packets relayed around the cut are still discarded
// on arrival. Stop heals the partition.
type partitionFault struct {
	nw     *netem.Network
	a, b   []netem.NodeID
	rules  map[*netem.Node][]*netem.Rule
	active bool
}

// NewPartition creates a partition(groupA, groupB) injection. The groups
// must be non-empty, disjoint and name existing nodes; nodes in neither
// group keep talking to both sides (they may still relay, which is why
// the cut filters by peer on both endpoints rather than by topology).
func NewPartition(nw *netem.Network, groupA, groupB []netem.NodeID) (Injection, error) {
	if len(groupA) == 0 || len(groupB) == 0 {
		return nil, fmt.Errorf("fault: partition groups must be non-empty")
	}
	inA := make(map[netem.NodeID]bool, len(groupA))
	for _, id := range groupA {
		if nw.Node(id) == nil {
			return nil, fmt.Errorf("fault: partition group references unknown node %q", id)
		}
		inA[id] = true
	}
	for _, id := range groupB {
		if nw.Node(id) == nil {
			return nil, fmt.Errorf("fault: partition group references unknown node %q", id)
		}
		if inA[id] {
			return nil, fmt.Errorf("fault: node %q in both partition groups", id)
		}
	}
	return &partitionFault{nw: nw, a: groupA, b: groupB}, nil
}

func (f *partitionFault) Kind() string { return "partition" }

// Target returns the empty id: a partition targets the network, not one
// node.
func (f *partitionFault) Target() netem.NodeID { return "" }

func (f *partitionFault) Active() bool { return f.active }

func (f *partitionFault) Start() {
	if f.active {
		return
	}
	f.active = true
	f.rules = make(map[*netem.Node][]*netem.Rule)
	cut := func(on netem.NodeID, peers []netem.NodeID) {
		n := f.nw.Node(on)
		for _, peer := range peers {
			r := n.InstallRule(netem.Rule{Dir: netem.DirBoth, Peer: peer, DropAll: true})
			f.rules[n] = append(f.rules[n], r)
		}
	}
	for _, a := range f.a {
		cut(a, f.b)
	}
	for _, b := range f.b {
		cut(b, f.a)
	}
}

func (f *partitionFault) Stop() {
	if !f.active {
		return
	}
	f.active = false
	for n, rules := range f.rules {
		for _, r := range rules {
			n.RemoveRule(r)
		}
	}
	f.rules = nil
}

package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"excovery/internal/netem"
	"excovery/internal/sched"
)

// TrafficProto is the netem protocol label of generated background
// traffic. It differs from the SD label so experiment-process fault rules
// do not hit the load generator.
const TrafficProto = "traffic"

// PairChoice selects the candidate set the traffic pairs are drawn from
// (§IV-D2: "Pairs can be randomly chosen from the acting nodes, non-acting
// nodes or all nodes"). It matches the <choice> parameter of Fig. 7.
type PairChoice int

const (
	// ChooseEnv draws pairs from the non-acting (environment) nodes.
	ChooseEnv PairChoice = 0
	// ChooseActors draws pairs from the acting nodes.
	ChooseActors PairChoice = 1
	// ChooseAll draws pairs from all nodes.
	ChooseAll PairChoice = 2
)

// TrafficConfig parameterizes the traffic generator (Fig. 7).
type TrafficConfig struct {
	// Pairs is the number of communicating node pairs.
	Pairs int
	// BwKbps is the bidirectional data rate per pair in kbit/s.
	BwKbps int
	// Choice selects the candidate node set.
	Choice PairChoice
	// Seed drives the initial pair selection.
	Seed int64
	// SwitchAmount pairs are re-drawn per run (§IV-D2: "They vary from
	// run to run as determined by a switch amount parameter").
	SwitchAmount int
	// SwitchSeed drives the switching; Fig. 7 wires it to the
	// replication index so replications randomize identically.
	SwitchSeed int64
	// Run is the run ordinal controlling how many switch steps have been
	// applied.
	Run int
	// PacketSize is the payload size in bytes; default 512.
	PacketSize int
}

// Traffic is a running traffic generation manipulation.
type Traffic struct {
	s     *sched.Scheduler
	nw    *netem.Network
	cfg   TrafficConfig
	pairs [][2]netem.NodeID
	epoch *int // shared stop flag; incremented on Stop
	sent  uint64
}

// pickPairs deterministically derives the run's pair set: an initial
// selection from Seed, then Run·SwitchAmount single-pair replacements from
// SwitchSeed.
func pickPairs(candidates []netem.NodeID, cfg TrafficConfig) ([][2]netem.NodeID, error) {
	if len(candidates) < 2 {
		return nil, fmt.Errorf("fault: need at least 2 candidate nodes, have %d", len(candidates))
	}
	sorted := append([]netem.NodeID(nil), candidates...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rng := rand.New(rand.NewSource(cfg.Seed))
	draw := func(r *rand.Rand) [2]netem.NodeID {
		a := r.Intn(len(sorted))
		b := r.Intn(len(sorted) - 1)
		if b >= a {
			b++
		}
		return [2]netem.NodeID{sorted[a], sorted[b]}
	}
	pairs := make([][2]netem.NodeID, cfg.Pairs)
	for i := range pairs {
		pairs[i] = draw(rng)
	}
	if cfg.SwitchAmount > 0 && cfg.Run > 0 {
		srng := rand.New(rand.NewSource(cfg.SwitchSeed))
		for step := 0; step < cfg.Run*cfg.SwitchAmount; step++ {
			idx := srng.Intn(len(pairs))
			a := srng.Intn(len(sorted))
			b := srng.Intn(len(sorted) - 1)
			if b >= a {
				b++
			}
			pairs[idx] = [2]netem.NodeID{sorted[a], sorted[b]}
		}
	}
	return pairs, nil
}

// StartTraffic launches background load between node pairs drawn from
// candidates. Each pair communicates bidirectionally at cfg.BwKbps until
// Stop is called.
func StartTraffic(s *sched.Scheduler, nw *netem.Network, candidates []netem.NodeID, cfg TrafficConfig) (*Traffic, error) {
	if cfg.Pairs <= 0 {
		return nil, fmt.Errorf("fault: traffic needs a positive pair count")
	}
	if cfg.BwKbps <= 0 {
		return nil, fmt.Errorf("fault: traffic needs a positive data rate")
	}
	if cfg.PacketSize == 0 {
		cfg.PacketSize = 512
	}
	pairs, err := pickPairs(candidates, cfg)
	if err != nil {
		return nil, err
	}
	epoch := new(int)
	t := &Traffic{s: s, nw: nw, cfg: cfg, pairs: pairs, epoch: epoch}
	// BwKbps is the pair's aggregate bidirectional rate, so each
	// direction carries half of it.
	perDirBps := float64(cfg.BwKbps*1000) / 2
	interval := time.Duration(float64(cfg.PacketSize*8) / perDirBps * float64(time.Second))
	if interval <= 0 {
		interval = time.Millisecond
	}
	gen := *epoch
	for _, p := range pairs {
		for _, dirPair := range [][2]netem.NodeID{{p[0], p[1]}, {p[1], p[0]}} {
			src, dst := dirPair[0], dirPair[1]
			s.GoDaemon(fmt.Sprintf("traffic %s->%s", src, dst), func() {
				payload := make([]byte, cfg.PacketSize)
				for *epoch == gen {
					nw.Node(src).Send(netem.Unicast(dst), TrafficProto, payload)
					t.sent++
					s.Sleep(interval)
				}
			})
		}
	}
	return t, nil
}

// Pairs returns the active node pairs.
func (t *Traffic) Pairs() [][2]netem.NodeID {
	return append([][2]netem.NodeID(nil), t.pairs...)
}

// Sent returns the number of generated packets so far.
func (t *Traffic) Sent() uint64 { return t.sent }

// Stop ends traffic generation. The sender tasks terminate at their next
// send slot.
func (t *Traffic) Stop() { *t.epoch++ }

// DropAll is the environment manipulation that makes all experiment nodes
// stop receiving, sending and forwarding the experiment process packets
// (§IV-D2). It installs an unconditional drop rule for the given protocol
// label on every node.
type DropAll struct {
	nw    *netem.Network
	proto string
	rules map[netem.NodeID]*netem.Rule
}

// NewDropAll prepares the manipulation for the given protocol label
// (empty = all packets).
func NewDropAll(nw *netem.Network, proto string) *DropAll {
	return &DropAll{nw: nw, proto: proto, rules: make(map[netem.NodeID]*netem.Rule)}
}

// Start installs the drop rules on all nodes.
func (d *DropAll) Start() {
	for _, id := range d.nw.Nodes() {
		if d.rules[id] != nil {
			continue
		}
		d.rules[id] = d.nw.Node(id).InstallRule(netem.Rule{
			Dir: netem.DirBoth, Proto: d.proto, DropAll: true,
		})
	}
}

// Stop removes the drop rules.
func (d *DropAll) Stop() {
	for id, r := range d.rules {
		d.nw.Node(id).RemoveRule(r)
		delete(d.rules, id)
	}
}

// Active reports whether the manipulation is installed.
func (d *DropAll) Active() bool { return len(d.rules) > 0 }

// Package fault implements ExCovery's fault injection and environment
// manipulation concept (§IV-D).
//
// Fault injections target one node: interface faults, message loss,
// message delay, and their path-selective variants. They are realized as
// netem manipulation rules (or interface state changes), so "all injected
// faults add up to already existing communication faults in the target
// platform" (§IV-D1) — a message-loss fault multiplies on top of link loss.
//
// Injections share the common temporal parameters duration, rate and
// randomseed: the fault is active in one continuous block covering rate of
// the duration, with the block's position chosen pseudo-randomly from
// randomseed (§IV-D). Without timing, a fault starts once and must be
// stopped explicitly.
//
// Environment manipulations operate on many nodes: the traffic generator
// creates bidirectional background load between node pairs (Fig. 7) and
// drop-all silences the experiment process on all nodes (run preparation).
package fault

import (
	"fmt"
	"math/rand"
	"time"

	"excovery/internal/netem"
	"excovery/internal/sched"
)

// Direction of a fault, mirroring §IV-D1. DirRandom resolves to receive or
// transmit using the injection seed.
type Direction string

const (
	// DirRx affects received packets.
	DirRx Direction = "receive"
	// DirTx affects transmitted packets.
	DirTx Direction = "transmit"
	// DirBoth affects both directions.
	DirBoth Direction = "both"
	// DirRandom picks receive or transmit pseudo-randomly.
	DirRandom Direction = "random"
)

// resolve maps a fault direction to a netem rule direction, resolving
// DirRandom with rng.
func (d Direction) resolve(rng *rand.Rand) (netem.Direction, error) {
	switch d {
	case DirRx:
		return netem.DirRx, nil
	case DirTx:
		return netem.DirTx, nil
	case DirBoth, "":
		return netem.DirBoth, nil
	case DirRandom:
		if rng.Intn(2) == 0 {
			return netem.DirRx, nil
		}
		return netem.DirTx, nil
	default:
		return 0, fmt.Errorf("fault: unknown direction %q", d)
	}
}

// Injection is an activatable fault. Start and Stop are idempotent.
type Injection interface {
	// Kind names the fault type.
	Kind() string
	// Target names the node the fault applies to.
	Target() netem.NodeID
	// Start activates the fault.
	Start()
	// Stop deactivates the fault.
	Stop()
	// Active reports whether the fault is currently applied.
	Active() bool
}

// ruleFault is an Injection realized as a single netem rule.
type ruleFault struct {
	kind string
	node *netem.Node
	rule netem.Rule
	inst *netem.Rule
}

func (f *ruleFault) Kind() string         { return f.kind }
func (f *ruleFault) Target() netem.NodeID { return f.node.ID() }
func (f *ruleFault) Active() bool         { return f.inst != nil }

func (f *ruleFault) Start() {
	if f.inst == nil {
		f.inst = f.node.InstallRule(f.rule)
	}
}

func (f *ruleFault) Stop() {
	if f.inst != nil {
		f.node.RemoveRule(f.inst)
		f.inst = nil
	}
}

// newRuleFault is the common constructor path of all rule-realized faults:
// one rng seeded from the injection's own seed resolves the direction AND
// feeds the rule's probabilistic draws (the fault's randomness is fully
// determined by its seed, independent of the node stream).
func newRuleFault(kind string, node *netem.Node, dir Direction, seed int64, rule netem.Rule) (Injection, error) {
	rng := rand.New(rand.NewSource(seed))
	d, err := dir.resolve(rng)
	if err != nil {
		return nil, err
	}
	rule.Dir = d
	rule.Rng = rng
	return &ruleFault{kind: kind, node: node, rule: rule}, nil
}

// NewMessageLoss drops experiment-process packets with the given
// probability (§IV-D1 message loss). proto selects the affected packets;
// use the SD protocol label to hit only the experiment process.
func NewMessageLoss(node *netem.Node, prob float64, dir Direction, proto string, seed int64) (Injection, error) {
	if prob < 0 || prob > 1 {
		return nil, fmt.Errorf("fault: loss probability %v out of range", prob)
	}
	return newRuleFault("message_loss", node, dir, seed,
		netem.Rule{Proto: proto, DropProb: prob})
}

// NewMessageDelay applies a constant delay to every experiment-process
// packet (§IV-D1 message delay).
func NewMessageDelay(node *netem.Node, delay time.Duration, dir Direction, proto string, seed int64) (Injection, error) {
	if delay < 0 {
		return nil, fmt.Errorf("fault: negative delay")
	}
	return newRuleFault("message_delay", node, dir, seed,
		netem.Rule{Proto: proto, Delay: delay})
}

// NewPathLoss drops packets selectively between the target and one peer
// (§IV-D1 path loss).
func NewPathLoss(node *netem.Node, peer netem.NodeID, prob float64, dir Direction, proto string, seed int64) (Injection, error) {
	if prob < 0 || prob > 1 {
		return nil, fmt.Errorf("fault: loss probability %v out of range", prob)
	}
	return newRuleFault("path_loss", node, dir, seed,
		netem.Rule{Proto: proto, Peer: peer, DropProb: prob})
}

// NewPathDelay delays packets selectively between the target and one peer
// (§IV-D1 path delay).
func NewPathDelay(node *netem.Node, peer netem.NodeID, delay time.Duration, dir Direction, proto string, seed int64) (Injection, error) {
	if delay < 0 {
		return nil, fmt.Errorf("fault: negative delay")
	}
	return newRuleFault("path_delay", node, dir, seed,
		netem.Rule{Proto: proto, Peer: peer, Delay: delay})
}

// NewMessageCorrupt flips one pseudo-random payload bit of matching
// packets with the given probability (netem-style corrupt). The corrupted
// payload is a copy — packet payloads are shared between hops.
func NewMessageCorrupt(node *netem.Node, prob float64, dir Direction, proto string, seed int64) (Injection, error) {
	if prob <= 0 || prob > 1 {
		return nil, fmt.Errorf("fault: corrupt probability %v out of range", prob)
	}
	rng := rand.New(rand.NewSource(seed))
	d, err := dir.resolve(rng)
	if err != nil {
		return nil, err
	}
	rule := netem.Rule{Dir: d, Proto: proto, CorruptProb: prob, Rng: rng,
		Modify: func(p *netem.Packet) {
			if len(p.Payload) == 0 {
				return
			}
			q := append([]byte(nil), p.Payload...)
			bit := rng.Intn(len(q) * 8)
			q[bit/8] ^= 1 << (bit % 8)
			p.Payload = q
		}}
	return &ruleFault{kind: "message_corrupt", node: node, rule: rule}, nil
}

// NewMessageDuplicate duplicates matching packets with the given
// probability (netem-style duplicate).
func NewMessageDuplicate(node *netem.Node, prob float64, dir Direction, proto string, seed int64) (Injection, error) {
	if prob <= 0 || prob > 1 {
		return nil, fmt.Errorf("fault: duplicate probability %v out of range", prob)
	}
	return newRuleFault("message_duplicate", node, dir, seed,
		netem.Rule{Proto: proto, DupProb: prob})
}

// NewMessageReorder holds back matching packets by delay with the given
// probability so later packets overtake them; corr correlates successive
// decisions netem-style (reordering comes in bursts).
func NewMessageReorder(node *netem.Node, prob, corr float64, delay time.Duration, dir Direction, proto string, seed int64) (Injection, error) {
	if prob <= 0 || prob > 1 {
		return nil, fmt.Errorf("fault: reorder probability %v out of range", prob)
	}
	if corr < 0 || corr > 1 {
		return nil, fmt.Errorf("fault: reorder correlation %v out of range", corr)
	}
	if delay <= 0 {
		return nil, fmt.Errorf("fault: reorder delay must be positive")
	}
	return newRuleFault("message_reorder", node, dir, seed,
		netem.Rule{Proto: proto, ReorderProb: prob, ReorderCorr: corr, ReorderDelay: delay})
}

// NewRateLimit shapes matching packets through a token bucket of
// burstBytes at rateBps bits per second (netem-style rate limiting):
// excess packets are delayed, not dropped. burstBytes ≤ 0 selects the
// default burst.
func NewRateLimit(node *netem.Node, rateBps int64, burstBytes int, dir Direction, proto string, seed int64) (Injection, error) {
	if rateBps <= 0 {
		return nil, fmt.Errorf("fault: rate must be positive, got %d", rateBps)
	}
	return newRuleFault("rate_limit", node, dir, seed,
		netem.Rule{Proto: proto, RateBps: rateBps, RateBurst: burstBytes})
}

// procFault is a process-level fault (pumba-style kill/pause/stress),
// realized through the netem node's process state.
type procFault struct {
	kind         string
	node         *netem.Node
	active       bool
	start, clear func(n *netem.Node)
}

func (f *procFault) Kind() string         { return f.kind }
func (f *procFault) Target() netem.NodeID { return f.node.ID() }
func (f *procFault) Active() bool         { return f.active }

func (f *procFault) Start() {
	if !f.active {
		f.active = true
		f.start(f.node)
	}
}

func (f *procFault) Stop() {
	if f.active {
		f.active = false
		f.clear(f.node)
	}
}

// NewNodeKill kills the target's process: the node goes mute, loses its
// queues and leaves routing until the fault stops (restart).
func NewNodeKill(node *netem.Node) Injection {
	return &procFault{kind: "node_kill", node: node,
		start: func(n *netem.Node) { n.SetKilled(true) },
		clear: func(n *netem.Node) { n.SetKilled(false) }}
}

// NewNodePause freezes the target's process (SIGSTOP): received packets
// buffer up to the queue limit and are processed on resume.
func NewNodePause(node *netem.Node) Injection {
	return &procFault{kind: "node_pause", node: node,
		start: func(n *netem.Node) { n.SetPaused(true) },
		clear: func(n *netem.Node) { n.SetPaused(false) }}
}

// NewNodeStress loads the target's CPU by factor ≥ 0: packet
// serialization slows down by (1+factor)×.
func NewNodeStress(node *netem.Node, factor float64) (Injection, error) {
	if factor < 0 {
		return nil, fmt.Errorf("fault: stress factor %v negative", factor)
	}
	return &procFault{kind: "node_stress", node: node,
		start: func(n *netem.Node) { n.SetStress(factor) },
		clear: func(n *netem.Node) { n.SetStress(0) }}, nil
}

// ifaceFault implements the interface fault of §IV-D1: no messages are
// transmitted or received in the chosen direction while active.
type ifaceFault struct {
	node   *netem.Node
	dir    netem.Direction
	active bool
}

// NewInterfaceFault blocks the node's interface in the given direction.
func NewInterfaceFault(node *netem.Node, dir Direction, seed int64) (Injection, error) {
	d, err := dir.resolve(rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return &ifaceFault{node: node, dir: d}, nil
}

func (f *ifaceFault) Kind() string         { return "interface_fault" }
func (f *ifaceFault) Target() netem.NodeID { return f.node.ID() }
func (f *ifaceFault) Active() bool         { return f.active }

func (f *ifaceFault) Start() {
	if f.active {
		return
	}
	f.active = true
	switch f.dir {
	case netem.DirRx:
		f.node.SetInterfaceDir(true, false)
	case netem.DirTx:
		f.node.SetInterfaceDir(false, true)
	default:
		f.node.SetInterface(false)
	}
}

func (f *ifaceFault) Stop() {
	if !f.active {
		return
	}
	f.active = false
	switch f.dir {
	case netem.DirRx, netem.DirTx:
		f.node.SetInterfaceDir(false, false)
	default:
		f.node.SetInterface(true)
	}
}

// Timing is the common temporal fault behaviour (§IV-D): the fault is
// active for Rate·Duration in one continuous block whose position within
// Duration derives from Seed.
type Timing struct {
	// Duration is the total window the fault belongs to.
	Duration time.Duration
	// Rate is the active fraction in [0,1].
	Rate float64
	// Seed positions the active block.
	Seed int64
}

// Applied is a scheduled fault activation.
type Applied struct {
	// StartAt and StopAt are the activation block bounds (virtual time).
	StartAt, StopAt time.Time
	startT, stopT   *sched.Timer
}

// Cancel stops the scheduled activation (and deactivates if active).
func (a *Applied) Cancel(inj Injection) {
	if a.startT != nil {
		a.startT.Stop()
	}
	if a.stopT != nil {
		a.stopT.Stop()
	}
	inj.Stop()
}

// Apply schedules inj according to tm, starting from the current virtual
// time. onEvent, if non-nil, receives "start"/"stop" notifications when the
// block boundaries fire (§IV-D3: one event per action). Rate ≤ 0 or zero
// Duration degenerate to an immediate permanent start; Rate ≥ 1 with a
// positive Duration is active for the whole window and stops at its end.
func Apply(s *sched.Scheduler, inj Injection, tm Timing, onEvent func(string)) *Applied {
	notify := func(what string) {
		if onEvent != nil {
			onEvent(what)
		}
	}
	if tm.Duration <= 0 || tm.Rate <= 0 {
		// Started once, stopped explicitly (§IV-D2). Activation is
		// synchronous so the fault is in force before the next action
		// of the manipulation process executes.
		a := &Applied{StartAt: s.Now()}
		inj.Start()
		notify("start")
		return a
	}
	rate := tm.Rate
	if rate > 1 {
		rate = 1
	}
	active := time.Duration(float64(tm.Duration) * rate)
	slack := tm.Duration - active
	rng := rand.New(rand.NewSource(tm.Seed))
	var offset time.Duration
	if slack > 0 {
		offset = time.Duration(rng.Int63n(int64(slack) + 1))
	}
	now := s.Now()
	a := &Applied{StartAt: now.Add(offset), StopAt: now.Add(offset + active)}
	a.startT = s.ScheduleFunc(offset, "fault-start "+inj.Kind(), func() {
		inj.Start()
		notify("start")
	})
	a.stopT = s.ScheduleFunc(offset+active, "fault-stop "+inj.Kind(), func() {
		inj.Stop()
		notify("stop")
	})
	return a
}

// Package noderpc implements the distributed deployment of Fig. 12: the
// ExperiMaster and the NodeManagers run in separate processes connected by
// a dedicated XML-RPC control channel (§IV-A1, §VI-A).
//
// The node-host process serves the platform — the emulated network and one
// NodeManager per platform node — behind an XML-RPC server whose methods
// mirror the NodeHandle contract. Node events are pushed asynchronously to
// the master's own XML-RPC endpoint (the paper's nodes report measurements
// over the control channel). The master process runs the treatment plan
// and the experiment processes, issuing every action as a synchronous RPC,
// exactly like the prototype's xmlrpclib-based ExperiMaster.
package noderpc

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"excovery/internal/core"
	"excovery/internal/eventlog"
	"excovery/internal/obs"
	"excovery/internal/xmlrpc"
)

// Host serves a core.Experiment's nodes over XML-RPC. Create the
// experiment with Options.RealTime so RPC requests interleave with
// emulated time, and wire Options.OnEvent to Host.ForwardEvent.
type Host struct {
	x *core.Experiment

	mu     sync.Mutex
	outbox []eventlog.Event
	kick   chan struct{}
	master *xmlrpc.Client
	stop   chan struct{}

	// Master session lease (§IV-A1 control channel, hardened): the host
	// tracks which master session owns it and until when. A master that
	// stops renewing loses the binding at the deadline; a new (or
	// restarted) master re-adopts the host by registering again.
	session      string
	leaseTTL     time.Duration
	leaseExpires time.Time
	adoptions    int
	expiries     int
	watching     bool
	defaultTTL   time.Duration
	now          func() time.Time // wall clock; overridable in tests

	// Fencing (DESIGN.md §14): the highest registry claim epoch accepted
	// on host.set_master. A set_master or fenced data-path RPC carrying an
	// older epoch is refused — a master that lost its claim to a registry
	// takeover cannot keep driving the nodes (split-brain prevention).
	// Epoch 0 (static -host wiring, no registry) is never fenced.
	epoch         int64
	fencedRejects int

	// Cross-process tracing (DESIGN.md §13): the host records one span per
	// control-channel request on its own tracer. Span ids are seeded into a
	// space disjoint from the master's, so when the master merges harvested
	// host spans into the per-run trace.json, parent links stay unambiguous.
	tracer *obs.Tracer
	track  string
	curRun int // run of the last node.prepare_run; attributes runless RPCs

	// Event-pump instrumentation (nil-safe without Instrument).
	obs        *obs.Registry
	mForwarded *obs.Counter
	mBatches   *obs.Counter
	mPushErrs  *obs.Counter
	mOutbox    *obs.Gauge
	mAdopt     *obs.Counter
	mRenew     *obs.Counter
	mExpire    *obs.Counter
	mFenced    *obs.Counter
}

// NewHost wraps an assembled experiment.
func NewHost(x *core.Experiment) *Host {
	track := "host"
	if ids := sortedKeys(x.Managers); len(ids) > 0 {
		track += ":" + ids[0]
	}
	tr := obs.NewTracer(x.S.Now)
	// Host span ids live in the upper half of a 64-bit space keyed by the
	// host's track name: merged master+host traces keep disjoint id spaces
	// without any coordination (the master allocates from 1 upward).
	fh := fnv.New32a()
	fh.Write([]byte(track))
	tr.SeedIDs((uint64(fh.Sum32()) | 1) << 32)
	return &Host{x: x, kick: make(chan struct{}, 1), stop: make(chan struct{}),
		now: time.Now, tracer: tr, track: track, curRun: -1}
}

// Tracer returns the host's span tracer (never nil).
func (h *Host) Tracer() *obs.Tracer { return h.tracer }

// SetDefaultLeaseTTL makes the host impose a lease on session-aware
// masters that register without one (excovery-node -lease-ttl). Sessionless
// legacy registrations stay unleased — they have no heartbeat to renew
// with. Call before serving.
func (h *Host) SetDefaultLeaseTTL(ttl time.Duration) { h.defaultTTL = ttl }

// Instrument registers the host's event-pump metrics in reg and passes the
// registry on to clients the host creates (the master-push client). Call
// before serving.
func (h *Host) Instrument(reg *obs.Registry) {
	h.obs = reg
	h.mForwarded = reg.Counter(obs.MHostEventsForwarded,
		"node events queued for push to the master")
	h.mBatches = reg.Counter(obs.MHostEventBatches,
		"event batches delivered to the master endpoint")
	h.mPushErrs = reg.Counter(obs.MHostEventPushErrors,
		"failed event pushes (batch requeued for redelivery)")
	h.mOutbox = reg.Gauge(obs.MHostOutboxLen,
		"events waiting in the push outbox")
	h.mAdopt = reg.Counter(obs.MHostMasterAdoptions,
		"master sessions that registered or re-adopted this host")
	h.mRenew = reg.Counter(obs.MHostLeaseRenewals,
		"master lease renewals accepted")
	h.mExpire = reg.Counter(obs.MHostLeaseExpiries,
		"master leases that expired without renewal")
	h.mFenced = reg.Counter(obs.MHostFencedRejections,
		"RPCs refused because they carried a stale fencing epoch")
}

// FenceEpoch returns the highest registry claim epoch this host has
// accepted. The discovery agent sends it with every re-registration, so a
// restarted registry re-learns the fleet's epoch high-water mark from one
// heartbeat interval of traffic.
func (h *Host) FenceEpoch() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.epoch
}

// HostStatus is the /status document of a node host.
type HostStatus struct {
	// Nodes are the platform node ids served by this host.
	Nodes []string `json:"nodes"`
	// MasterSet reports whether a master registered its event endpoint.
	MasterSet bool `json:"master_set"`
	// Session is the id of the master session currently holding the
	// lease ("" without a session-aware master).
	Session string `json:"session,omitempty"`
	// LeaseRemaining is how long until the master's lease expires, in
	// seconds (absent without a lease).
	LeaseRemaining float64 `json:"lease_remaining_s,omitempty"`
	// Adoptions counts master registrations, including re-adoptions by a
	// restarted master.
	Adoptions int `json:"adoptions,omitempty"`
	// LeaseExpiries counts leases lost to a silent master.
	LeaseExpiries int `json:"lease_expiries,omitempty"`
	// FenceEpoch is the highest registry claim epoch accepted (0 when the
	// host has only ever been driven by static wiring).
	FenceEpoch int64 `json:"fence_epoch,omitempty"`
	// FencedRejections counts RPCs refused for carrying a stale epoch.
	FencedRejections int `json:"fenced_rejections,omitempty"`
	// OutboxLen is the number of events awaiting push.
	OutboxLen int `json:"outbox_len"`
	// VirtualTime is the host scheduler's current time.
	VirtualTime time.Time `json:"virtual_time"`
}

// Status returns a live snapshot for the obs /status endpoint. Safe to
// call from any goroutine.
func (h *Host) Status() HostStatus {
	h.mu.Lock()
	h.checkLeaseLocked()
	st := HostStatus{
		MasterSet:        h.master != nil,
		Session:          h.session,
		Adoptions:        h.adoptions,
		LeaseExpiries:    h.expiries,
		FenceEpoch:       h.epoch,
		FencedRejections: h.fencedRejects,
		OutboxLen:        len(h.outbox),
	}
	if h.leaseTTL > 0 {
		st.LeaseRemaining = h.leaseExpires.Sub(h.now()).Seconds()
	}
	h.mu.Unlock()
	st.Nodes = sortedKeys(h.x.Managers)
	st.VirtualTime = h.x.S.Now()
	return st
}

// checkLeaseLocked drops the master binding when its lease deadline has
// passed: the host stops pushing events into the void and becomes free
// for the next master session to adopt. Events already in the outbox are
// retained and delivered to whichever master registers next. Callers
// hold h.mu.
func (h *Host) checkLeaseLocked() {
	if h.leaseTTL <= 0 || h.master == nil || h.now().Before(h.leaseExpires) {
		return
	}
	h.master = nil
	h.session = ""
	h.leaseTTL = 0
	h.expiries++
	h.mExpire.Inc()
}

// watchLease expires silent masters even while the host is idle. One
// goroutine per host, started with the first leased registration.
func (h *Host) watchLease() {
	for {
		h.mu.Lock()
		h.checkLeaseLocked()
		ttl := h.leaseTTL
		h.mu.Unlock()
		interval := ttl / 3
		if interval <= 0 {
			interval = 100 * time.Millisecond
		}
		select {
		case <-h.stop:
			return
		case <-time.After(interval):
		}
	}
}

// ForwardEvent queues an event for asynchronous delivery to the master.
// It is safe to call from scheduler task context: queuing never blocks.
func (h *Host) ForwardEvent(ev eventlog.Event) {
	h.mu.Lock()
	h.outbox = append(h.outbox, ev)
	h.mOutbox.Set(int64(len(h.outbox)))
	h.mu.Unlock()
	h.mForwarded.Inc()
	select {
	case h.kick <- struct{}{}:
	default:
	}
}

// pump drains the outbox to the master endpoint. Runs on a plain
// goroutine: HTTP calls must not block the cooperative scheduler.
func (h *Host) pump() {
	for {
		select {
		case <-h.stop:
			return
		case <-h.kick:
		}
		for {
			h.mu.Lock()
			if len(h.outbox) == 0 || h.master == nil {
				h.mu.Unlock()
				break
			}
			batch := h.outbox
			h.outbox = nil
			h.mOutbox.Set(0)
			c := h.master
			h.mu.Unlock()
			data, err := json.Marshal(batch)
			if err != nil {
				continue
			}
			if _, err := c.Call("master.events", string(data)); err != nil {
				// Redeliver on the next kick; the control channel is
				// expected to be reliable (§IV-A1), so transient HTTP
				// errors only delay events.
				h.mPushErrs.Inc()
				h.mu.Lock()
				h.outbox = append(batch, h.outbox...)
				h.mOutbox.Set(int64(len(h.outbox)))
				h.mu.Unlock()
				time.Sleep(50 * time.Millisecond)
				select {
				case h.kick <- struct{}{}:
				default:
				}
				break
			}
			h.mBatches.Inc()
		}
	}
}

// Close stops the event pump.
func (h *Host) Close() { close(h.stop) }

// traced wraps a data-path handler with cross-process span recording: the
// trailing trace_parent parameter (appended by the master's RemoteNode
// proxy) is stripped and becomes the span's parent, so host spans slot
// into the master's run/phase tree when the traces are merged.
func (h *Host) traced(method string, fn xmlrpc.Handler) xmlrpc.Handler {
	return func(params []any) (any, error) {
		parent, params := xmlrpc.TraceParent(params)
		sp := h.tracer.Begin(parent, h.track, "rpc", method, h.spanRun(params), 0, nil)
		res, err := fn(params)
		if err != nil {
			h.tracer.EndWith(sp, map[string]string{"err": err.Error()})
		} else {
			h.tracer.End(sp)
		}
		return res, err
	}
}

// fenced wraps a data-path handler with the fencing check: the trailing
// fence_epoch parameter (appended by a registry-claiming master's
// RemoteNode proxy) is stripped and compared against the epoch of the
// last accepted host.set_master. A stale epoch means the caller's claim
// was superseded — the RPC is refused so two masters can never drive the
// same node. Calls without a fence (static wiring) pass through. Compose
// inside traced, which strips the outermost trace_parent marker first.
func (h *Host) fenced(method string, fn xmlrpc.Handler) xmlrpc.Handler {
	return func(params []any) (any, error) {
		epoch, params := xmlrpc.FenceEpoch(params)
		if epoch > 0 {
			h.mu.Lock()
			cur := h.epoch
			if epoch < cur {
				h.fencedRejects++
			}
			h.mu.Unlock()
			if epoch < cur {
				h.mFenced.Inc()
				return nil, fmt.Errorf("%s: fenced: stale epoch %d (host claimed at epoch %d)",
					method, epoch, cur)
			}
		}
		return fn(params)
	}
}

// spanRun attributes an RPC to a run: methods carrying (node, run) use the
// explicit argument; the rest (execute, emit, harvests, env actions) fall
// back to the run of the last prepare_run.
func (h *Host) spanRun(params []any) int {
	if run, ok := arg[int](params, 1); ok {
		return run
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.curRun
}

func (h *Host) setRun(run int) {
	h.mu.Lock()
	h.curRun = run
	h.mu.Unlock()
}

// Server builds the XML-RPC method registry for this host.
func (h *Host) Server() *xmlrpc.Server {
	srv := xmlrpc.NewServer()
	srv.Obs = h.obs
	s := h.x.S
	// Data-path methods are traced and fenced; the trailing markers nest
	// as [args..., fence_epoch?, trace_parent?], so traced strips first.
	dataPath := func(method string, fn xmlrpc.Handler) xmlrpc.Handler {
		return h.traced(method, h.fenced(method, fn))
	}

	srv.Register("host.ping", func(params []any) (any, error) {
		return "pong", nil
	})
	srv.Register("host.nodes", func(params []any) (any, error) {
		ids := make([]any, 0, len(h.x.Managers))
		for _, id := range sortedKeys(h.x.Managers) {
			ids = append(ids, id)
		}
		return ids, nil
	})
	// host.set_master registers the master's event endpoint and starts
	// the push pump. The optional (session, ttl_ms) pair opens a lease:
	// the registration expires unless host.renew_lease keeps it alive. A
	// later registration — same master restarted under a new session id,
	// or a different master — adopts the host, superseding the old
	// binding; queued events flow to the adopter. The optional fourth
	// parameter is the registry claim epoch: a registration older than one
	// already accepted is refused (the caller's claim was superseded).
	srv.Register("host.set_master", func(params []any) (any, error) {
		url, ok := arg[string](params, 0)
		if !ok {
			return nil, fmt.Errorf("host.set_master: want url string")
		}
		session, _ := arg[string](params, 1)
		ttlMS, _ := arg[int](params, 2)
		epoch, _ := arg[int](params, 3)
		if epoch > 0 {
			h.mu.Lock()
			cur := h.epoch
			if int64(epoch) < cur {
				h.fencedRejects++
			}
			h.mu.Unlock()
			if int64(epoch) < cur {
				h.mFenced.Inc()
				return nil, fmt.Errorf("host.set_master: fenced: stale epoch %d (host claimed at epoch %d)",
					epoch, cur)
			}
		}
		// Event pushes ride the same resilient transport as the master's
		// calls: retried with backoff, deduplicated by idempotency key so
		// a lost response cannot double-publish a batch.
		h.mu.Lock()
		pumpStarted := h.watching
		h.watching = true
		h.master = xmlrpc.NewRetryingClient(url, xmlrpc.DefaultRetryPolicy())
		h.master.Obs = h.obs
		h.session = session
		h.leaseTTL = time.Duration(ttlMS) * time.Millisecond
		if h.leaseTTL == 0 && session != "" {
			h.leaseTTL = h.defaultTTL
		}
		if h.leaseTTL > 0 {
			h.leaseExpires = h.now().Add(h.leaseTTL)
		}
		if int64(epoch) > h.epoch {
			h.epoch = int64(epoch)
		}
		h.adoptions++
		h.mu.Unlock()
		h.mAdopt.Inc()
		if !pumpStarted {
			go h.pump()
			go h.watchLease()
		}
		// Wake the pump: a re-adopting master must receive events queued
		// while no master was bound.
		select {
		case h.kick <- struct{}{}:
		default:
		}
		return true, nil
	})
	// host.renew_lease extends the registered master session's deadline.
	// A session the host does not know — it restarted, its lease expired,
	// or another master adopted it — is refused, telling the caller to
	// re-register with host.set_master.
	srv.Register("host.renew_lease", func(params []any) (any, error) {
		session, ok := arg[string](params, 0)
		if !ok {
			return nil, fmt.Errorf("host.renew_lease: want (session, ttl_ms)")
		}
		ttlMS, _ := arg[int](params, 1)
		h.mu.Lock()
		defer h.mu.Unlock()
		h.checkLeaseLocked()
		if h.session == "" || h.session != session {
			return nil, fmt.Errorf("host.renew_lease: unknown session %q", session)
		}
		if ttlMS > 0 {
			h.leaseTTL = time.Duration(ttlMS) * time.Millisecond
		}
		h.leaseExpires = h.now().Add(h.leaseTTL)
		h.mRenew.Inc()
		return true, nil
	})

	// node.ping is the health probe of the master's preflight check: it
	// verifies the control channel and that the node is served here.
	srv.Register("node.ping", dataPath("node.ping", func(params []any) (any, error) {
		id, ok := arg[string](params, 0)
		if !ok {
			return nil, fmt.Errorf("node.ping: want node")
		}
		if h.x.Managers[id] == nil {
			return nil, fmt.Errorf("no node %q", id)
		}
		return "pong", nil
	}))
	srv.Register("node.prepare_run", dataPath("node.prepare_run", func(params []any) (any, error) {
		id, run, err := nodeRunArgs(params)
		if err != nil {
			return nil, err
		}
		mgr := h.x.Managers[id]
		if mgr == nil {
			return nil, fmt.Errorf("no node %q", id)
		}
		h.setRun(run)
		s.InjectWait("rpc prepare_run", func() { mgr.PrepareRun(run) })
		return true, nil
	}))
	srv.Register("node.cleanup_run", dataPath("node.cleanup_run", func(params []any) (any, error) {
		id, run, err := nodeRunArgs(params)
		if err != nil {
			return nil, err
		}
		mgr := h.x.Managers[id]
		if mgr == nil {
			return nil, fmt.Errorf("no node %q", id)
		}
		s.InjectWait("rpc cleanup_run", func() { mgr.CleanupRun(run) })
		return true, nil
	}))
	srv.Register("node.execute", dataPath("node.execute", func(params []any) (any, error) {
		id, ok := arg[string](params, 0)
		action, ok2 := arg[string](params, 1)
		if !ok || !ok2 {
			return nil, fmt.Errorf("node.execute: want (node, action, params)")
		}
		pm := map[string]string{}
		if raw, ok := arg[map[string]any](params, 2); ok {
			for k, v := range raw {
				pm[k] = fmt.Sprint(v)
			}
		}
		mgr := h.x.Managers[id]
		if mgr == nil {
			return nil, fmt.Errorf("no node %q", id)
		}
		var execErr error
		s.InjectWait("rpc execute "+action, func() { execErr = mgr.Execute(action, pm) })
		if execErr != nil {
			return nil, execErr
		}
		return true, nil
	}))
	srv.Register("node.emit", dataPath("node.emit", func(params []any) (any, error) {
		id, ok := arg[string](params, 0)
		typ, ok2 := arg[string](params, 1)
		if !ok || !ok2 {
			return nil, fmt.Errorf("node.emit: want (node, type, params)")
		}
		pm := map[string]string{}
		if raw, ok := arg[map[string]any](params, 2); ok {
			for k, v := range raw {
				pm[k] = fmt.Sprint(v)
			}
		}
		mgr := h.x.Managers[id]
		if mgr == nil {
			return nil, fmt.Errorf("no node %q", id)
		}
		s.InjectWait("rpc emit", func() { mgr.Emit(typ, pm) })
		return true, nil
	}))
	srv.Register("node.local_time", dataPath("node.local_time", func(params []any) (any, error) {
		id, ok := arg[string](params, 0)
		if !ok {
			return nil, fmt.Errorf("node.local_time: want node")
		}
		mgr := h.x.Managers[id]
		if mgr == nil {
			return nil, fmt.Errorf("no node %q", id)
		}
		var t time.Time
		s.InjectWait("rpc local_time", func() { t = mgr.LocalTime() })
		return t.Format(time.RFC3339Nano), nil
	}))
	srv.Register("node.harvest_events", dataPath("node.harvest_events", func(params []any) (any, error) {
		id, run, err := nodeRunArgs(params)
		if err != nil {
			return nil, err
		}
		mgr := h.x.Managers[id]
		if mgr == nil {
			return nil, fmt.Errorf("no node %q", id)
		}
		var events []eventlog.Event
		s.InjectWait("rpc harvest_events", func() { events = mgr.Recorder().RunEvents(run) })
		data, err := json.Marshal(events)
		if err != nil {
			return nil, err
		}
		return string(data), nil
	}))
	srv.Register("node.harvest_packets", dataPath("node.harvest_packets", func(params []any) (any, error) {
		id, ok := arg[string](params, 0)
		if !ok {
			return nil, fmt.Errorf("node.harvest_packets: want node")
		}
		mgr := h.x.Managers[id]
		if mgr == nil {
			return nil, fmt.Errorf("no node %q", id)
		}
		var data []byte
		var jerr error
		s.InjectWait("rpc harvest_packets", func() {
			data, jerr = json.Marshal(mgr.HarvestRun())
		})
		if jerr != nil {
			return nil, jerr
		}
		return string(data), nil
	}))
	srv.Register("node.harvest_extras", dataPath("node.harvest_extras", func(params []any) (any, error) {
		id, ok := arg[string](params, 0)
		if !ok {
			return nil, fmt.Errorf("node.harvest_extras: want node")
		}
		mgr := h.x.Managers[id]
		if mgr == nil {
			return nil, fmt.Errorf("no node %q", id)
		}
		var data []byte
		var jerr error
		s.InjectWait("rpc harvest_extras", func() {
			data, jerr = json.Marshal(mgr.HarvestExtras())
		})
		if jerr != nil {
			return nil, jerr
		}
		return string(data), nil
	}))
	srv.Register("env.execute", dataPath("env.execute", func(params []any) (any, error) {
		action, ok := arg[string](params, 0)
		if !ok {
			return nil, fmt.Errorf("env.execute: want (action, params)")
		}
		pm := map[string]string{}
		if raw, ok := arg[map[string]any](params, 1); ok {
			for k, v := range raw {
				pm[k] = fmt.Sprint(v)
			}
		}
		var execErr error
		s.InjectWait("rpc env "+action, func() { execErr = h.x.Env.Execute(action, pm) })
		if execErr != nil {
			return nil, execErr
		}
		return true, nil
	}))
	srv.Register("env.reset", dataPath("env.reset", func(params []any) (any, error) {
		s.InjectWait("rpc env reset", func() { h.x.Env.Reset() })
		return true, nil
	}))
	// host.harvest_trace returns the host tracer's closed spans of one run
	// as a trace.json document; the master merges them (dedup'd by span id)
	// into the per-run level-2 trace artifact.
	srv.Register("host.harvest_trace", h.fenced("host.harvest_trace", func(params []any) (any, error) {
		run, ok := arg[int](params, 0)
		if !ok {
			return nil, fmt.Errorf("host.harvest_trace: want run")
		}
		return string(obs.MarshalSpans(h.tracer.RunSpans(run))), nil
	}))
	// host.obs_snapshot ships the host's metric registry — including the
	// emulator data-path series of internal/netem and internal/sched — to
	// the master's campaign fan-in as a JSON []obs.MetricPoint.
	srv.Register("host.obs_snapshot", h.fenced("host.obs_snapshot", func(params []any) (any, error) {
		data, err := json.Marshal(h.obs.Snapshot())
		if err != nil {
			return nil, err
		}
		return string(data), nil
	}))
	return srv
}

func nodeRunArgs(params []any) (string, int, error) {
	id, ok := arg[string](params, 0)
	run, ok2 := arg[int](params, 1)
	if !ok || !ok2 {
		return "", 0, fmt.Errorf("want (node string, run int)")
	}
	return id, run, nil
}

func arg[T any](params []any, i int) (T, bool) {
	var zero T
	if i >= len(params) {
		return zero, false
	}
	v, ok := params[i].(T)
	if !ok {
		return zero, false
	}
	return v, true
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Package noderpc implements the distributed deployment of Fig. 12: the
// ExperiMaster and the NodeManagers run in separate processes connected by
// a dedicated XML-RPC control channel (§IV-A1, §VI-A).
//
// The node-host process serves the platform — the emulated network and one
// NodeManager per platform node — behind an XML-RPC server whose methods
// mirror the NodeHandle contract. Node events are pushed asynchronously to
// the master's own XML-RPC endpoint (the paper's nodes report measurements
// over the control channel). The master process runs the treatment plan
// and the experiment processes, issuing every action as a synchronous RPC,
// exactly like the prototype's xmlrpclib-based ExperiMaster.
package noderpc

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"excovery/internal/core"
	"excovery/internal/eventlog"
	"excovery/internal/obs"
	"excovery/internal/xmlrpc"
)

// Host serves a core.Experiment's nodes over XML-RPC. Create the
// experiment with Options.RealTime so RPC requests interleave with
// emulated time, and wire Options.OnEvent to Host.ForwardEvent.
type Host struct {
	x *core.Experiment

	mu     sync.Mutex
	outbox []eventlog.Event
	kick   chan struct{}
	master *xmlrpc.Client
	stop   chan struct{}

	// Event-pump instrumentation (nil-safe without Instrument).
	obs        *obs.Registry
	mForwarded *obs.Counter
	mBatches   *obs.Counter
	mPushErrs  *obs.Counter
	mOutbox    *obs.Gauge
}

// NewHost wraps an assembled experiment.
func NewHost(x *core.Experiment) *Host {
	return &Host{x: x, kick: make(chan struct{}, 1), stop: make(chan struct{})}
}

// Instrument registers the host's event-pump metrics in reg and passes the
// registry on to clients the host creates (the master-push client). Call
// before serving.
func (h *Host) Instrument(reg *obs.Registry) {
	h.obs = reg
	h.mForwarded = reg.Counter("excovery_host_events_forwarded_total",
		"node events queued for push to the master")
	h.mBatches = reg.Counter("excovery_host_event_batches_total",
		"event batches delivered to the master endpoint")
	h.mPushErrs = reg.Counter("excovery_host_event_push_errors_total",
		"failed event pushes (batch requeued for redelivery)")
	h.mOutbox = reg.Gauge("excovery_host_outbox_len",
		"events waiting in the push outbox")
}

// HostStatus is the /status document of a node host.
type HostStatus struct {
	// Nodes are the platform node ids served by this host.
	Nodes []string `json:"nodes"`
	// MasterSet reports whether a master registered its event endpoint.
	MasterSet bool `json:"master_set"`
	// OutboxLen is the number of events awaiting push.
	OutboxLen int `json:"outbox_len"`
	// VirtualTime is the host scheduler's current time.
	VirtualTime time.Time `json:"virtual_time"`
}

// Status returns a live snapshot for the obs /status endpoint. Safe to
// call from any goroutine.
func (h *Host) Status() HostStatus {
	h.mu.Lock()
	st := HostStatus{
		MasterSet: h.master != nil,
		OutboxLen: len(h.outbox),
	}
	h.mu.Unlock()
	st.Nodes = sortedKeys(h.x.Managers)
	st.VirtualTime = h.x.S.Now()
	return st
}

// ForwardEvent queues an event for asynchronous delivery to the master.
// It is safe to call from scheduler task context: queuing never blocks.
func (h *Host) ForwardEvent(ev eventlog.Event) {
	h.mu.Lock()
	h.outbox = append(h.outbox, ev)
	h.mOutbox.Set(int64(len(h.outbox)))
	h.mu.Unlock()
	h.mForwarded.Inc()
	select {
	case h.kick <- struct{}{}:
	default:
	}
}

// pump drains the outbox to the master endpoint. Runs on a plain
// goroutine: HTTP calls must not block the cooperative scheduler.
func (h *Host) pump() {
	for {
		select {
		case <-h.stop:
			return
		case <-h.kick:
		}
		for {
			h.mu.Lock()
			if len(h.outbox) == 0 || h.master == nil {
				h.mu.Unlock()
				break
			}
			batch := h.outbox
			h.outbox = nil
			h.mOutbox.Set(0)
			c := h.master
			h.mu.Unlock()
			data, err := json.Marshal(batch)
			if err != nil {
				continue
			}
			if _, err := c.Call("master.events", string(data)); err != nil {
				// Redeliver on the next kick; the control channel is
				// expected to be reliable (§IV-A1), so transient HTTP
				// errors only delay events.
				h.mPushErrs.Inc()
				h.mu.Lock()
				h.outbox = append(batch, h.outbox...)
				h.mOutbox.Set(int64(len(h.outbox)))
				h.mu.Unlock()
				time.Sleep(50 * time.Millisecond)
				select {
				case h.kick <- struct{}{}:
				default:
				}
				break
			}
			h.mBatches.Inc()
		}
	}
}

// Close stops the event pump.
func (h *Host) Close() { close(h.stop) }

// Server builds the XML-RPC method registry for this host.
func (h *Host) Server() *xmlrpc.Server {
	srv := xmlrpc.NewServer()
	srv.Obs = h.obs
	s := h.x.S

	srv.Register("host.ping", func(params []any) (any, error) {
		return "pong", nil
	})
	srv.Register("host.nodes", func(params []any) (any, error) {
		ids := make([]any, 0, len(h.x.Managers))
		for _, id := range sortedKeys(h.x.Managers) {
			ids = append(ids, id)
		}
		return ids, nil
	})
	// host.set_master registers the master's event endpoint and starts
	// the push pump.
	srv.Register("host.set_master", func(params []any) (any, error) {
		url, ok := arg[string](params, 0)
		if !ok {
			return nil, fmt.Errorf("host.set_master: want url string")
		}
		// Event pushes ride the same resilient transport as the master's
		// calls: retried with backoff, deduplicated by idempotency key so
		// a lost response cannot double-publish a batch.
		h.mu.Lock()
		first := h.master == nil
		h.master = xmlrpc.NewRetryingClient(url, xmlrpc.DefaultRetryPolicy())
		h.master.Obs = h.obs
		h.mu.Unlock()
		if first {
			go h.pump()
		}
		return true, nil
	})

	// node.ping is the health probe of the master's preflight check: it
	// verifies the control channel and that the node is served here.
	srv.Register("node.ping", func(params []any) (any, error) {
		id, ok := arg[string](params, 0)
		if !ok {
			return nil, fmt.Errorf("node.ping: want node")
		}
		if h.x.Managers[id] == nil {
			return nil, fmt.Errorf("no node %q", id)
		}
		return "pong", nil
	})
	srv.Register("node.prepare_run", func(params []any) (any, error) {
		id, run, err := nodeRunArgs(params)
		if err != nil {
			return nil, err
		}
		mgr := h.x.Managers[id]
		if mgr == nil {
			return nil, fmt.Errorf("no node %q", id)
		}
		s.InjectWait("rpc prepare_run", func() { mgr.PrepareRun(run) })
		return true, nil
	})
	srv.Register("node.cleanup_run", func(params []any) (any, error) {
		id, run, err := nodeRunArgs(params)
		if err != nil {
			return nil, err
		}
		mgr := h.x.Managers[id]
		if mgr == nil {
			return nil, fmt.Errorf("no node %q", id)
		}
		s.InjectWait("rpc cleanup_run", func() { mgr.CleanupRun(run) })
		return true, nil
	})
	srv.Register("node.execute", func(params []any) (any, error) {
		id, ok := arg[string](params, 0)
		action, ok2 := arg[string](params, 1)
		if !ok || !ok2 {
			return nil, fmt.Errorf("node.execute: want (node, action, params)")
		}
		pm := map[string]string{}
		if raw, ok := arg[map[string]any](params, 2); ok {
			for k, v := range raw {
				pm[k] = fmt.Sprint(v)
			}
		}
		mgr := h.x.Managers[id]
		if mgr == nil {
			return nil, fmt.Errorf("no node %q", id)
		}
		var execErr error
		s.InjectWait("rpc execute "+action, func() { execErr = mgr.Execute(action, pm) })
		if execErr != nil {
			return nil, execErr
		}
		return true, nil
	})
	srv.Register("node.emit", func(params []any) (any, error) {
		id, ok := arg[string](params, 0)
		typ, ok2 := arg[string](params, 1)
		if !ok || !ok2 {
			return nil, fmt.Errorf("node.emit: want (node, type, params)")
		}
		pm := map[string]string{}
		if raw, ok := arg[map[string]any](params, 2); ok {
			for k, v := range raw {
				pm[k] = fmt.Sprint(v)
			}
		}
		mgr := h.x.Managers[id]
		if mgr == nil {
			return nil, fmt.Errorf("no node %q", id)
		}
		s.InjectWait("rpc emit", func() { mgr.Emit(typ, pm) })
		return true, nil
	})
	srv.Register("node.local_time", func(params []any) (any, error) {
		id, ok := arg[string](params, 0)
		if !ok {
			return nil, fmt.Errorf("node.local_time: want node")
		}
		mgr := h.x.Managers[id]
		if mgr == nil {
			return nil, fmt.Errorf("no node %q", id)
		}
		var t time.Time
		s.InjectWait("rpc local_time", func() { t = mgr.LocalTime() })
		return t.Format(time.RFC3339Nano), nil
	})
	srv.Register("node.harvest_events", func(params []any) (any, error) {
		id, run, err := nodeRunArgs(params)
		if err != nil {
			return nil, err
		}
		mgr := h.x.Managers[id]
		if mgr == nil {
			return nil, fmt.Errorf("no node %q", id)
		}
		var events []eventlog.Event
		s.InjectWait("rpc harvest_events", func() { events = mgr.Recorder().RunEvents(run) })
		data, err := json.Marshal(events)
		if err != nil {
			return nil, err
		}
		return string(data), nil
	})
	srv.Register("node.harvest_packets", func(params []any) (any, error) {
		id, ok := arg[string](params, 0)
		if !ok {
			return nil, fmt.Errorf("node.harvest_packets: want node")
		}
		mgr := h.x.Managers[id]
		if mgr == nil {
			return nil, fmt.Errorf("no node %q", id)
		}
		var data []byte
		var jerr error
		s.InjectWait("rpc harvest_packets", func() {
			data, jerr = json.Marshal(mgr.HarvestRun())
		})
		if jerr != nil {
			return nil, jerr
		}
		return string(data), nil
	})
	srv.Register("node.harvest_extras", func(params []any) (any, error) {
		id, ok := arg[string](params, 0)
		if !ok {
			return nil, fmt.Errorf("node.harvest_extras: want node")
		}
		mgr := h.x.Managers[id]
		if mgr == nil {
			return nil, fmt.Errorf("no node %q", id)
		}
		var data []byte
		var jerr error
		s.InjectWait("rpc harvest_extras", func() {
			data, jerr = json.Marshal(mgr.HarvestExtras())
		})
		if jerr != nil {
			return nil, jerr
		}
		return string(data), nil
	})
	srv.Register("env.execute", func(params []any) (any, error) {
		action, ok := arg[string](params, 0)
		if !ok {
			return nil, fmt.Errorf("env.execute: want (action, params)")
		}
		pm := map[string]string{}
		if raw, ok := arg[map[string]any](params, 1); ok {
			for k, v := range raw {
				pm[k] = fmt.Sprint(v)
			}
		}
		var execErr error
		s.InjectWait("rpc env "+action, func() { execErr = h.x.Env.Execute(action, pm) })
		if execErr != nil {
			return nil, execErr
		}
		return true, nil
	})
	srv.Register("env.reset", func(params []any) (any, error) {
		s.InjectWait("rpc env reset", func() { h.x.Env.Reset() })
		return true, nil
	})
	return srv
}

func nodeRunArgs(params []any) (string, int, error) {
	id, ok := arg[string](params, 0)
	run, ok2 := arg[int](params, 1)
	if !ok || !ok2 {
		return "", 0, fmt.Errorf("want (node string, run int)")
	}
	return id, run, nil
}

func arg[T any](params []any, i int) (T, bool) {
	var zero T
	if i >= len(params) {
		return zero, false
	}
	v, ok := params[i].(T)
	if !ok {
		return zero, false
	}
	return v, true
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package noderpc

import (
	"crypto/rand"
	"encoding/hex"
	"hash/fnv"
	mrand "math/rand"
	"sync"
	"time"

	"excovery/internal/obs"
	"excovery/internal/xmlrpc"
)

// NewSessionID returns a fresh master session identifier. Every master
// process start gets its own id, so a host can tell a restarted master
// (new session, re-adoption) from the one it already serves.
func NewSessionID() string {
	var b [6]byte
	rand.Read(b[:])
	return "m-" + hex.EncodeToString(b[:])
}

// Lease maintains one master session's claim on a node host: it registers
// the master's event endpoint under a session id with a TTL and keeps the
// lease alive from a background heartbeat. When the host no longer knows
// the session — it restarted, or the lease expired while the master was
// unreachable — the next heartbeat re-registers instead of failing, so
// both sides converge without operator intervention.
type Lease struct {
	// C is the host's XML-RPC endpoint.
	C *xmlrpc.Client
	// MasterURL is this master's event endpoint, registered on the host.
	MasterURL string
	// Session identifies this master process (NewSessionID).
	Session string
	// TTL is the lease duration granted per renewal.
	TTL time.Duration
	// Epoch, when positive, is the fencing epoch granted by the discovery
	// registry's claim; it rides on host.set_master so the host can refuse
	// a registration that is older than one it already accepted.
	Epoch int64
	// Interval overrides the heartbeat period (default TTL/3).
	Interval time.Duration
	// Seed seeds the heartbeat jitter PRNG; 0 derives a seed from Session.
	// Each beat is jittered by ±20% so a large fleet's renewals spread out
	// instead of synchronizing into a thundering herd.
	Seed int64
	// RegisterFn and RenewFn, when set, replace the host.set_master /
	// host.renew_lease wire calls. The discovery registry agent reuses the
	// heartbeat/rebind loop this way: RenewFn is registry.heartbeat and
	// RegisterFn the full registry.register recovery path.
	RegisterFn func() error
	RenewFn    func() error
	// Obs, if set, receives the heartbeat counters.
	Obs *obs.Registry

	mu       sync.Mutex
	renewals int
	rebinds  int
	errs     int
	stop     chan struct{}
	done     chan struct{}
	started  bool
}

// ttlMS converts the TTL for the wire (milliseconds).
func (l *Lease) ttlMS() int { return int(l.TTL / time.Millisecond) }

// Register claims the host for this session: host.set_master with the
// session id, TTL and — when claimed through a registry — the fencing
// epoch. Also the recovery path of a failed renewal.
func (l *Lease) Register() error {
	if l.RegisterFn != nil {
		return l.RegisterFn()
	}
	if l.Epoch > 0 {
		_, err := l.C.Call("host.set_master", l.MasterURL, l.Session, l.ttlMS(), int(l.Epoch))
		return err
	}
	_, err := l.C.Call("host.set_master", l.MasterURL, l.Session, l.ttlMS())
	return err
}

// renewOnce issues one renewal on the wire (or via the RenewFn override).
func (l *Lease) renewOnce() error {
	if l.RenewFn != nil {
		return l.RenewFn()
	}
	_, err := l.C.Call("host.renew_lease", l.Session, l.ttlMS())
	return err
}

// Renew extends the lease once. A refused renewal (host restarted, lease
// expired, host adopted by someone else) falls back to re-registering.
func (l *Lease) Renew() error {
	if err := l.renewOnce(); err == nil {
		l.count(&l.renewals, obs.MLeaseRenewals,
			"successful host lease renewals")
		return nil
	}
	if err := l.Register(); err != nil {
		l.count(&l.errs, obs.MLeaseErrors,
			"heartbeats that could neither renew nor re-register")
		return err
	}
	l.count(&l.rebinds, obs.MLeaseRebinds,
		"heartbeats that had to re-register an unknown or expired session")
	return nil
}

// Start launches the heartbeat goroutine, renewing at Interval (default
// TTL/3) with ±20% seeded jitter per beat. Safe to call once; Stop tears
// it down.
func (l *Lease) Start() {
	l.mu.Lock()
	if l.started {
		l.mu.Unlock()
		return
	}
	l.started = true
	l.stop = make(chan struct{})
	l.done = make(chan struct{})
	l.mu.Unlock()
	interval := l.Interval
	if interval <= 0 {
		interval = l.TTL / 3
	}
	if interval <= 0 {
		interval = time.Second
	}
	rng := mrand.New(mrand.NewSource(l.jitterSeed()))
	go func() {
		defer close(l.done)
		for {
			select {
			case <-l.stop:
				return
			case <-time.After(jitter(interval, rng)):
			}
			l.Renew()
		}
	}()
}

// jitterSeed derives the heartbeat jitter seed: the explicit Seed, or a
// hash of the session id so every lease in a fleet gets its own stream
// without any wall-clock entropy.
func (l *Lease) jitterSeed() int64 {
	if l.Seed != 0 {
		return l.Seed
	}
	h := fnv.New64a()
	h.Write([]byte(l.Session))
	return int64(h.Sum64())
}

// jitter spreads one heartbeat period by ±20%.
func jitter(interval time.Duration, rng *mrand.Rand) time.Duration {
	f := 0.8 + 0.4*rng.Float64()
	return time.Duration(f * float64(interval))
}

// Stop halts the heartbeat and waits for it to exit.
func (l *Lease) Stop() {
	l.mu.Lock()
	if !l.started {
		l.mu.Unlock()
		return
	}
	l.started = false
	stop, done := l.stop, l.done
	l.mu.Unlock()
	close(stop)
	<-done
}

// Stats reports the heartbeat's lifetime accounting.
func (l *Lease) Stats() (renewals, rebinds, errs int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.renewals, l.rebinds, l.errs
}

func (l *Lease) count(field *int, name, help string) {
	l.mu.Lock()
	*field++
	l.mu.Unlock()
	l.Obs.Counter(name, help).Inc()
}

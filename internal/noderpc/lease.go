package noderpc

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"excovery/internal/obs"
	"excovery/internal/xmlrpc"
)

// NewSessionID returns a fresh master session identifier. Every master
// process start gets its own id, so a host can tell a restarted master
// (new session, re-adoption) from the one it already serves.
func NewSessionID() string {
	var b [6]byte
	rand.Read(b[:])
	return "m-" + hex.EncodeToString(b[:])
}

// Lease maintains one master session's claim on a node host: it registers
// the master's event endpoint under a session id with a TTL and keeps the
// lease alive from a background heartbeat. When the host no longer knows
// the session — it restarted, or the lease expired while the master was
// unreachable — the next heartbeat re-registers instead of failing, so
// both sides converge without operator intervention.
type Lease struct {
	// C is the host's XML-RPC endpoint.
	C *xmlrpc.Client
	// MasterURL is this master's event endpoint, registered on the host.
	MasterURL string
	// Session identifies this master process (NewSessionID).
	Session string
	// TTL is the lease duration granted per renewal.
	TTL time.Duration
	// Obs, if set, receives the heartbeat counters.
	Obs *obs.Registry

	mu       sync.Mutex
	renewals int
	rebinds  int
	errs     int
	stop     chan struct{}
	done     chan struct{}
	started  bool
}

// ttlMS converts the TTL for the wire (milliseconds).
func (l *Lease) ttlMS() int { return int(l.TTL / time.Millisecond) }

// Register claims the host for this session: host.set_master with the
// session id and TTL. Also the recovery path of a failed renewal.
func (l *Lease) Register() error {
	_, err := l.C.Call("host.set_master", l.MasterURL, l.Session, l.ttlMS())
	return err
}

// Renew extends the lease once. A refused renewal (host restarted, lease
// expired, host adopted by someone else) falls back to re-registering.
func (l *Lease) Renew() error {
	if _, err := l.C.Call("host.renew_lease", l.Session, l.ttlMS()); err == nil {
		l.count(&l.renewals, obs.MLeaseRenewals,
			"successful host lease renewals")
		return nil
	}
	if err := l.Register(); err != nil {
		l.count(&l.errs, obs.MLeaseErrors,
			"heartbeats that could neither renew nor re-register")
		return err
	}
	l.count(&l.rebinds, obs.MLeaseRebinds,
		"heartbeats that had to re-register an unknown or expired session")
	return nil
}

// Start launches the heartbeat goroutine, renewing at TTL/3. Safe to call
// once; Stop tears it down.
func (l *Lease) Start() {
	l.mu.Lock()
	if l.started {
		l.mu.Unlock()
		return
	}
	l.started = true
	l.stop = make(chan struct{})
	l.done = make(chan struct{})
	l.mu.Unlock()
	interval := l.TTL / 3
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		defer close(l.done)
		for {
			select {
			case <-l.stop:
				return
			case <-time.After(interval):
			}
			l.Renew()
		}
	}()
}

// Stop halts the heartbeat and waits for it to exit.
func (l *Lease) Stop() {
	l.mu.Lock()
	if !l.started {
		l.mu.Unlock()
		return
	}
	l.started = false
	stop, done := l.stop, l.done
	l.mu.Unlock()
	close(stop)
	<-done
}

// Stats reports the heartbeat's lifetime accounting.
func (l *Lease) Stats() (renewals, rebinds, errs int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.renewals, l.rebinds, l.errs
}

func (l *Lease) count(field *int, name, help string) {
	l.mu.Lock()
	*field++
	l.mu.Unlock()
	l.Obs.Counter(name, help).Inc()
}

package noderpc

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"excovery/internal/core"
	"excovery/internal/desc"
	"excovery/internal/eventlog"
	"excovery/internal/xmlrpc"
)

// leaseHost builds a host over a one-shot experiment and serves it.
func leaseHost(t *testing.T) (*Host, *httptest.Server) {
	t.Helper()
	x, err := core.New(desc.OneShot(30), core.Options{RealTime: true, Speed: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHost(x)
	t.Cleanup(h.Close)
	ts := httptest.NewServer(h.Server())
	t.Cleanup(ts.Close)
	return h, ts
}

func TestLeaseLifecycleAndTakeover(t *testing.T) {
	h, ts := leaseHost(t)

	a := &Lease{C: xmlrpc.NewClient(ts.URL), MasterURL: "http://master-a",
		Session: "s-a", TTL: time.Hour}
	if err := a.Register(); err != nil {
		t.Fatal(err)
	}
	st := h.Status()
	if !st.MasterSet || st.Session != "s-a" || st.Adoptions != 1 {
		t.Fatalf("after register: %+v", st)
	}
	if st.LeaseRemaining <= 0 {
		t.Fatalf("lease remaining = %v", st.LeaseRemaining)
	}
	if err := a.Renew(); err != nil {
		t.Fatal(err)
	}
	if renewals, rebinds, errs := a.Stats(); renewals != 1 || rebinds != 0 || errs != 0 {
		t.Fatalf("stats = %d/%d/%d", renewals, rebinds, errs)
	}

	// A restarted master comes back under a new session id and adopts the
	// host; the dead session's renewals are refused from then on.
	b := &Lease{C: xmlrpc.NewClient(ts.URL), MasterURL: "http://master-b",
		Session: "s-b", TTL: time.Hour}
	if err := b.Register(); err != nil {
		t.Fatal(err)
	}
	st = h.Status()
	if st.Session != "s-b" || st.Adoptions != 2 {
		t.Fatalf("after takeover: %+v", st)
	}
	if _, err := a.C.Call("host.renew_lease", "s-a", 1000); err == nil {
		t.Fatal("superseded session still renews")
	}
	// The Lease helper recovers by re-registering — which adopts back.
	if err := a.Renew(); err != nil {
		t.Fatal(err)
	}
	if _, rebinds, _ := a.Stats(); rebinds != 1 {
		t.Fatalf("rebinds = %d, want 1", rebinds)
	}
	if st = h.Status(); st.Session != "s-a" || st.Adoptions != 3 {
		t.Fatalf("after rebind: %+v", st)
	}
}

func TestLeaseExpiryFreesHost(t *testing.T) {
	h, ts := leaseHost(t)
	l := &Lease{C: xmlrpc.NewClient(ts.URL), MasterURL: "http://master",
		Session: "s-1", TTL: 40 * time.Millisecond}
	if err := l.Register(); err != nil {
		t.Fatal(err)
	}
	// No renewals: the watchdog must drop the binding at the deadline.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := h.Status()
		if !st.MasterSet {
			if st.Session != "" || st.LeaseExpiries != 1 {
				t.Fatalf("after expiry: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease never expired: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The freed host accepts the next registration.
	if err := l.Register(); err != nil {
		t.Fatal(err)
	}
	if st := h.Status(); !st.MasterSet || st.Adoptions != 2 {
		t.Fatalf("re-registration refused: %+v", st)
	}
}

func TestRenewAgainstRestartedHostReregisters(t *testing.T) {
	// The host is fresh — as after a node restart it has no session state.
	// The master's heartbeat must converge on its own: the refused renewal
	// falls back to registration.
	h, ts := leaseHost(t)
	l := &Lease{C: xmlrpc.NewClient(ts.URL), MasterURL: "http://master",
		Session: "s-1", TTL: time.Hour}
	if err := l.Renew(); err != nil {
		t.Fatal(err)
	}
	if _, rebinds, _ := l.Stats(); rebinds != 1 {
		t.Fatalf("rebinds = %d, want 1", rebinds)
	}
	if st := h.Status(); st.Session != "s-1" || !st.MasterSet {
		t.Fatalf("host not adopted: %+v", st)
	}
}

func TestReadoptionDeliversQueuedEvents(t *testing.T) {
	h, ts := leaseHost(t)

	// Events recorded while no master is bound wait in the outbox.
	for i := 0; i < 3; i++ {
		h.ForwardEvent(eventlog.Event{Run: 0, Node: "A", Type: "queued"})
	}
	if st := h.Status(); st.OutboxLen != 3 || st.MasterSet {
		t.Fatalf("before adoption: %+v", st)
	}

	// The adopting master's endpoint counts delivered events.
	var mu sync.Mutex
	received := 0
	msrv := xmlrpc.NewServer()
	msrv.Register("master.events", func(params []any) (any, error) {
		data := params[0].(string)
		var evs []eventlog.Event
		if err := json.Unmarshal([]byte(data), &evs); err != nil {
			return nil, err
		}
		mu.Lock()
		received += len(evs)
		mu.Unlock()
		return true, nil
	})
	mts := httptest.NewServer(msrv)
	defer mts.Close()

	l := &Lease{C: xmlrpc.NewClient(ts.URL), MasterURL: mts.URL,
		Session: "s-1", TTL: time.Hour}
	if err := l.Register(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		got := received
		mu.Unlock()
		if got == 3 && h.Status().OutboxLen == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queued events not delivered: received=%d status=%+v",
				got, h.Status())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestNewSessionIDUnique(t *testing.T) {
	a, b := NewSessionID(), NewSessionID()
	if a == b || len(a) < 8 {
		t.Fatalf("session ids: %q, %q", a, b)
	}
}

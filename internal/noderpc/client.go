package noderpc

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"excovery/internal/eventlog"
	"excovery/internal/obs"
	"excovery/internal/sched"
	"excovery/internal/store"
	"excovery/internal/xmlrpc"
)

// RemoteNode is the master-process proxy of one node on a host; it
// implements master.NodeHandle over XML-RPC. Transport errors of the
// infallible parts of the NodeHandle contract are accounted per run:
// PrepareRun clears the previous run's error, so one transient failure no
// longer poisons the proxy for the rest of the experiment.
type RemoteNode struct {
	// NodeID is the platform node id on the host.
	NodeID string
	// C is the host's XML-RPC endpoint.
	C *xmlrpc.Client

	mu          sync.Mutex
	runErr      error
	runErrs     int
	totalErrs   int
	traceParent uint64
	fenceEpoch  int64
}

// SetTraceParent sets the master-side span id attached to every subsequent
// RPC of this proxy as the trailing trace_parent parameter, so the host's
// request spans parent under the master's run/phase tree (DESIGN.md §13).
// The master updates it at each broadcast site; zero detaches.
func (r *RemoteNode) SetTraceParent(id uint64) {
	r.mu.Lock()
	r.traceParent = id
	r.mu.Unlock()
}

// SetFenceEpoch attaches a registry claim epoch to every subsequent RPC of
// this proxy as the trailing fence_epoch parameter (DESIGN.md §14): the
// host refuses the call once a newer claim has taken the host over, so a
// master that lost its claim cannot keep driving the node. Zero (static
// wiring) detaches.
func (r *RemoteNode) SetFenceEpoch(epoch int64) {
	r.mu.Lock()
	r.fenceEpoch = epoch
	r.mu.Unlock()
}

// call issues one control-channel RPC, folding in the current fence epoch
// and trace parent (in that order: the host's traced wrapper strips the
// outermost trace marker first, then the fencing check strips the epoch).
func (r *RemoteNode) call(method string, params ...any) (any, error) {
	r.mu.Lock()
	tp := r.traceParent
	fe := r.fenceEpoch
	r.mu.Unlock()
	params = xmlrpc.WithFenceEpoch(params, fe)
	return r.C.Call(method, xmlrpc.WithTraceParent(params, tp)...)
}

func (r *RemoteNode) fail(err error) {
	if err == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.runErrs++
	r.totalErrs++
	if r.runErr == nil {
		r.runErr = err
	}
}

// Err returns the first transport error of the current run (nil when the
// control channel has been healthy since the last PrepareRun). The master
// reads it after each run for quarantine accounting.
func (r *RemoteNode) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runErr
}

// ErrCount returns the transport error count of the current run.
func (r *RemoteNode) ErrCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runErrs
}

// TotalErrCount returns the transport error count across all runs.
func (r *RemoteNode) TotalErrCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.totalErrs
}

// Health implements master.HealthChecker: a node-scoped ping over the
// control channel, used by the master's preflight check.
func (r *RemoteNode) Health() error {
	_, err := r.call("node.ping", r.NodeID)
	return err
}

// ID implements master.NodeHandle.
func (r *RemoteNode) ID() string { return r.NodeID }

// PrepareRun implements master.NodeHandle. It opens a fresh error-
// accounting window before touching the wire.
func (r *RemoteNode) PrepareRun(run int) {
	r.mu.Lock()
	r.runErr = nil
	r.runErrs = 0
	r.mu.Unlock()
	_, err := r.call("node.prepare_run", r.NodeID, run)
	r.fail(err)
}

// CleanupRun implements master.NodeHandle.
func (r *RemoteNode) CleanupRun(run int) {
	_, err := r.call("node.cleanup_run", r.NodeID, run)
	r.fail(err)
}

// Execute implements master.NodeHandle.
func (r *RemoteNode) Execute(action string, params map[string]string) error {
	_, err := r.call("node.execute", r.NodeID, action, params)
	return err
}

// Emit implements master.NodeHandle.
func (r *RemoteNode) Emit(typ string, params map[string]string) {
	if params == nil {
		params = map[string]string{}
	}
	_, err := r.call("node.emit", r.NodeID, typ, params)
	r.fail(err)
}

// LocalTime implements master.NodeHandle; RFC3339Nano over the wire keeps
// sub-second resolution that plain XML-RPC dateTime lacks.
func (r *RemoteNode) LocalTime() time.Time {
	v, err := r.call("node.local_time", r.NodeID)
	if err != nil {
		r.fail(err)
		return time.Time{}
	}
	s, _ := v.(string)
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		r.fail(err)
		return time.Time{}
	}
	return t
}

// HarvestEvents implements master.NodeHandle.
func (r *RemoteNode) HarvestEvents(run int) []eventlog.Event {
	v, err := r.call("node.harvest_events", r.NodeID, run)
	if err != nil {
		r.fail(err)
		return nil
	}
	s, _ := v.(string)
	var events []eventlog.Event
	if err := json.Unmarshal([]byte(s), &events); err != nil {
		r.fail(err)
		return nil
	}
	return events
}

// HarvestPackets implements master.NodeHandle.
func (r *RemoteNode) HarvestPackets() []store.PacketRecord {
	v, err := r.call("node.harvest_packets", r.NodeID)
	if err != nil {
		r.fail(err)
		return nil
	}
	s, _ := v.(string)
	var pkts []store.PacketRecord
	if err := json.Unmarshal([]byte(s), &pkts); err != nil {
		r.fail(err)
		return nil
	}
	return pkts
}

// HarvestExtras implements master.NodeHandle.
func (r *RemoteNode) HarvestExtras() []store.ExtraMeasurement {
	v, err := r.call("node.harvest_extras", r.NodeID)
	if err != nil {
		r.fail(err)
		return nil
	}
	s, _ := v.(string)
	var extras []store.ExtraMeasurement
	if err := json.Unmarshal([]byte(s), &extras); err != nil {
		r.fail(err)
		return nil
	}
	return extras
}

// HarvestTrace implements the master's optional trace-harvest extension:
// it fetches the host tracer's closed spans of one run for merging into the
// per-run trace.json artifact. Best-effort — transport or decode errors
// yield nil without poisoning the run's error accounting.
func (r *RemoteNode) HarvestTrace(run int) []obs.Span {
	v, err := r.call("host.harvest_trace", run)
	if err != nil {
		return nil
	}
	s, _ := v.(string)
	spans, err := obs.UnmarshalSpans([]byte(s))
	if err != nil {
		return nil
	}
	return spans
}

// ObsSnapshot implements the master's campaign fan-in extension: one RPC
// fetches the host's full metric registry as a flat sample list.
func (r *RemoteNode) ObsSnapshot() ([]obs.MetricPoint, error) {
	v, err := r.call("host.obs_snapshot")
	if err != nil {
		return nil, err
	}
	s, _ := v.(string)
	var pts []obs.MetricPoint
	if err := json.Unmarshal([]byte(s), &pts); err != nil {
		return nil, err
	}
	return pts, nil
}

// ObsSource identifies the host behind this proxy so the master collects
// each host registry (and trace) once even when one host serves several
// nodes.
func (r *RemoteNode) ObsSource() string { return r.C.URL }

// RemoteEnv proxies environment actions to the host; it implements
// master.EnvExecutor.
type RemoteEnv struct {
	C *xmlrpc.Client
	// Epoch, when positive, fences env RPCs like RemoteNode.SetFenceEpoch.
	Epoch int64
	Err   error
}

// Execute implements master.EnvExecutor.
func (r *RemoteEnv) Execute(action string, params map[string]string) error {
	if params == nil {
		params = map[string]string{}
	}
	_, err := r.C.Call("env.execute", xmlrpc.WithFenceEpoch([]any{action, params}, r.Epoch)...)
	return err
}

// Reset implements master.EnvExecutor.
func (r *RemoteEnv) Reset() {
	if _, err := r.C.Call("env.reset", xmlrpc.WithFenceEpoch(nil, r.Epoch)...); err != nil && r.Err == nil {
		r.Err = err
	}
}

// FetchNodes lists the platform node ids a host serves (host.nodes), with
// a bounded retry: a node host that is still assembling its platform when
// the master preflights it — the cold-start race of a fleet brought up by
// one script — answers after a beat instead of failing the campaign. The
// error names the host, the attempt budget and the last failure so the
// operator knows exactly which endpoint to look at.
func FetchNodes(c *xmlrpc.Client, attempts int, backoff time.Duration) ([]string, error) {
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
		}
		v, err := c.Call("host.nodes")
		if err != nil {
			lastErr = err
			continue
		}
		raw, ok := v.([]any)
		if !ok {
			lastErr = fmt.Errorf("host.nodes: unexpected reply %T", v)
			continue
		}
		ids := make([]string, 0, len(raw))
		for _, n := range raw {
			if s, ok := n.(string); ok {
				ids = append(ids, s)
			}
		}
		sort.Strings(ids)
		return ids, nil
	}
	return nil, fmt.Errorf("host %s: host.nodes failed after %d attempts: %w",
		c.URL, attempts, lastErr)
}

// MasterServer receives event pushes from node hosts and publishes them
// into the master's bus via scheduler injection.
func MasterServer(s *sched.Scheduler, bus *eventlog.Bus) *xmlrpc.Server {
	srv := xmlrpc.NewServer()
	srv.Register("master.events", func(params []any) (any, error) {
		data, ok := arg[string](params, 0)
		if !ok {
			return nil, errBadArgs("master.events", "json string")
		}
		var events []eventlog.Event
		if err := json.Unmarshal([]byte(data), &events); err != nil {
			return nil, err
		}
		// Fire and forget: the push must not block the host's pump when
		// the master is already shutting down.
		s.Inject("rpc master.events", func() {
			for _, ev := range events {
				ev.Seq = 0 // bus assigns master-side sequence numbers
				bus.Publish(ev)
			}
		})
		return true, nil
	})
	srv.Register("master.ping", func(params []any) (any, error) {
		return "pong", nil
	})
	return srv
}

func errBadArgs(method, want string) error {
	return &xmlrpc.Fault{Code: -32602, String: method + ": want " + want}
}

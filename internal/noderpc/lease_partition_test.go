package noderpc

import (
	"net/http/httptest"
	"testing"
	"time"

	"excovery/internal/core"
	"excovery/internal/desc"
	"excovery/internal/failpoint"
	"excovery/internal/fault"
	"excovery/internal/xmlrpc"
)

// TestLeaseSurvivesControlPlanePartition drives a live heartbeat loop
// through a control-plane partition (fault.NewRPCPartition): while the
// host is unreachable its lease watchdog evicts the silent master; after
// the heal the very next heartbeat notices the refused renewal, falls
// back to registration, and the host re-adopts the same session — no
// operator, no restart.
func TestLeaseSurvivesControlPlanePartition(t *testing.T) {
	x, err := core.New(desc.OneShot(30), core.Options{RealTime: true, Speed: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHost(x)
	t.Cleanup(h.Close)
	fp := failpoint.New(7)
	srv := h.Server()
	srv.FP = fp
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	l := &Lease{C: xmlrpc.NewClient(ts.URL), MasterURL: "http://master",
		Session: "s-part", TTL: 150 * time.Millisecond, Interval: 40 * time.Millisecond}
	if err := l.Register(); err != nil {
		t.Fatal(err)
	}
	l.Start()
	defer l.Stop()

	// Let at least one heartbeat land before cutting the channel.
	waitFor(t, "first renewal", func() bool {
		renewals, _, _ := l.Stats()
		return renewals >= 1
	})

	part := fault.NewRPCPartition(fp)
	part.Start()
	// The master falls silent from the host's point of view; the lease
	// watchdog must free the host at the TTL deadline.
	waitFor(t, "lease expiry under partition", func() bool {
		st := h.Status()
		return !st.MasterSet && st.LeaseExpiries >= 1
	})

	part.Stop()
	// Healing converges without intervention: a refused renewal turns
	// into a re-registration (rebind), and the host re-adopts.
	waitFor(t, "rebind after heal", func() bool {
		_, rebinds, _ := l.Stats()
		return rebinds >= 1
	})
	waitFor(t, "host re-adoption", func() bool {
		st := h.Status()
		return st.MasterSet && st.Session == "s-part" && st.Adoptions >= 2
	})
	if _, _, errs := l.Stats(); errs == 0 {
		t.Error("partition left no failed-heartbeat trace in the stats")
	}
}

// waitFor polls cond until it holds or a generous deadline passes. The
// loop keys on observable state, not sleep lengths, so the test stays
// stable under -race scheduling noise.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

package noderpc

import (
	"net/http/httptest"
	"testing"
	"time"

	"excovery/internal/core"
	"excovery/internal/desc"
	"excovery/internal/eventlog"
	"excovery/internal/master"
	"excovery/internal/sched"
	"excovery/internal/sd"
	"excovery/internal/xmlrpc"
)

// TestDistributedOneShot runs the Fig. 12 deployment inside one test
// process: a node host (own real-time scheduler, emulated network, XML-RPC
// server) and a master (own real-time scheduler, event endpoint, RPC
// proxies), connected over HTTP loopback.
func TestDistributedOneShot(t *testing.T) {
	e := desc.OneShot(30)

	// --- node host side ---
	var host *Host
	x, err := core.New(e, core.Options{
		RealTime: true,
		Speed:    0.002, // 500× faster than real time
		OnEvent:  func(ev eventlog.Event) { host.ForwardEvent(ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	host = NewHost(x)
	defer host.Close()
	hostHTTP := httptest.NewServer(host.Server())
	defer hostHTTP.Close()
	x.S.SetKeepAlive(true) // serve RPC even when emulation is quiescent
	hostDone := make(chan error, 1)
	go func() { hostDone <- x.S.Run() }()
	defer x.S.Stop()

	// --- master side ---
	ms := sched.New(sched.RealTime, time.Unix(0, 0))
	ms.SetSpeed(0.002)
	bus := eventlog.NewBus(ms)
	masterHTTP := httptest.NewServer(MasterServer(ms, bus))
	defer masterHTTP.Close()

	hostClient := xmlrpc.NewClient(hostHTTP.URL)
	if _, err := hostClient.Call("host.set_master", masterHTTP.URL); err != nil {
		t.Fatal(err)
	}
	nodesV, err := hostClient.Call("host.nodes")
	if err != nil {
		t.Fatal(err)
	}
	nodeIDs := nodesV.([]any)
	if len(nodeIDs) != 2 {
		t.Fatalf("host.nodes = %v", nodeIDs)
	}

	handles := map[string]master.NodeHandle{}
	remotes := map[string]*RemoteNode{}
	for _, v := range nodeIDs {
		id := v.(string)
		rn := &RemoteNode{NodeID: id, C: xmlrpc.NewClient(hostHTTP.URL)}
		handles[id] = rn
		remotes[id] = rn
	}
	env := &RemoteEnv{C: xmlrpc.NewClient(hostHTTP.URL)}

	m, err := master.New(master.Config{
		Exp: e, S: ms, Bus: bus, Nodes: handles, Env: env,
	})
	if err != nil {
		t.Fatal(err)
	}

	var rep *master.Report
	var runErr error
	ms.Go("experimaster", func() {
		rep, runErr = m.RunAll()
	})
	if err := ms.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if rep.Completed != 1 {
		t.Fatalf("completed = %d; results: %+v", rep.Completed, rep.Results[0])
	}
	rr := rep.Results[0]
	if rr.Err != nil || rr.Aborted {
		t.Fatalf("run: err=%v aborted=%v", rr.Err, rr.Aborted)
	}
	if rr.Timeouts != 0 {
		t.Fatalf("timeouts = %d (discovery failed over RPC control plane)", rr.Timeouts)
	}
	// Transport must have stayed healthy.
	for id, rn := range remotes {
		if err := rn.Err(); err != nil {
			t.Fatalf("remote %s: %v", id, err)
		}
	}
	// Harvested events are authoritative: both lifecycle ends present.
	found := map[string]bool{}
	for _, ev := range remotes["A"].HarvestEvents(0) {
		found[ev.Type] = true
	}
	for _, ev := range remotes["B"].HarvestEvents(0) {
		found[ev.Type] = true
	}
	for _, typ := range []string{sd.EvStartPublish, sd.EvServiceAdd, sd.EvExitDone} {
		if !found[typ] {
			t.Errorf("missing harvested event %s", typ)
		}
	}
	// Offsets were measured over the control channel; the two processes
	// use different epochs, so the measured offset must be large and the
	// error bound finite.
	if len(rr.Offsets) == 0 {
		t.Fatal("no time sync measurements")
	}
	x.S.Stop()
	<-hostDone
}

func TestRemoteNodeErrorCollection(t *testing.T) {
	rn := &RemoteNode{NodeID: "x", C: xmlrpc.NewClient("http://127.0.0.1:1/nope")}
	rn.PrepareRun(0)
	if rn.Err() == nil {
		t.Fatal("expected transport error")
	}
	if evs := rn.HarvestEvents(0); evs != nil {
		t.Fatal("events from dead host")
	}
	if err := rn.Execute("sd_init", nil); err == nil {
		t.Fatal("Execute against dead host succeeded")
	}
	if rn.ErrCount() < 2 || rn.TotalErrCount() < 2 {
		t.Fatalf("err counts = %d/%d", rn.ErrCount(), rn.TotalErrCount())
	}
	if err := rn.Health(); err == nil {
		t.Fatal("Health against dead host succeeded")
	}
}

func TestMasterServerRejectsBadPayload(t *testing.T) {
	s := sched.NewVirtual()
	bus := eventlog.NewBus(s)
	srv := MasterServer(s, bus)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := xmlrpc.NewClient(ts.URL)
	if _, err := c.Call("master.events", "not json"); err == nil {
		t.Fatal("bad payload accepted")
	}
	if _, err := c.Call("master.events", 42); err == nil {
		t.Fatal("non-string accepted")
	}
	if v, err := c.Call("master.ping"); err != nil || v != "pong" {
		t.Fatalf("ping = %v, %v", v, err)
	}
}

// TestHostMethodErrors exercises the host server's argument and node
// validation without a running master.
func TestHostMethodErrors(t *testing.T) {
	e := desc.OneShot(30)
	x, err := core.New(e, core.Options{RealTime: true})
	if err != nil {
		t.Fatal(err)
	}
	host := NewHost(x)
	defer host.Close()
	x.S.SetKeepAlive(true)
	ts := httptest.NewServer(host.Server())
	defer ts.Close()
	done := make(chan error, 1)
	go func() { done <- x.S.Run() }()
	defer func() { x.S.Stop(); <-done }()

	c := xmlrpc.NewClient(ts.URL)
	if v, err := c.Call("host.ping"); err != nil || v != "pong" {
		t.Fatalf("ping = %v, %v", v, err)
	}
	cases := []struct {
		method string
		args   []any
	}{
		{"node.prepare_run", []any{"ghost", 0}},
		{"node.prepare_run", []any{42, "not-an-int"}},
		{"node.cleanup_run", []any{"ghost", 0}},
		{"node.execute", []any{"ghost", "sd_init", map[string]any{}}},
		{"node.execute", []any{"A"}}, // missing action
		{"node.emit", []any{"ghost", "x", map[string]any{}}},
		{"node.local_time", []any{"ghost"}},
		{"node.local_time", []any{}},
		{"node.harvest_events", []any{"ghost", 0}},
		{"node.harvest_packets", []any{"ghost"}},
		{"host.set_master", []any{}},
	}
	for _, tc := range cases {
		if _, err := c.Call(tc.method, tc.args...); err == nil {
			t.Errorf("%s(%v) succeeded", tc.method, tc.args)
		}
	}
	// A failing node action surfaces as a fault with the Go error text.
	if _, err := c.Call("node.execute", "A", "sd_init", map[string]any{}); err == nil {
		t.Error("sd_init without role should fault")
	}
	// env validation propagates too.
	if _, err := c.Call("env.execute", "env_warp", map[string]any{}); err == nil {
		t.Error("unknown env action accepted")
	}
	if _, err := c.Call("env.reset"); err != nil {
		t.Errorf("env.reset: %v", err)
	}
	// Valid calls work.
	if _, err := c.Call("node.prepare_run", "A", 0); err != nil {
		t.Errorf("prepare_run: %v", err)
	}
	v, err := c.Call("node.local_time", "A")
	if err != nil {
		t.Fatal(err)
	}
	if _, perr := time.Parse(time.RFC3339Nano, v.(string)); perr != nil {
		t.Fatalf("local_time format: %v", perr)
	}
}

package noderpc

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"excovery/internal/core"
	"excovery/internal/desc"
	"excovery/internal/eventlog"
	"excovery/internal/failpoint"
	"excovery/internal/master"
	"excovery/internal/metrics"
	"excovery/internal/obs"
	"excovery/internal/sched"
	"excovery/internal/store"
	"excovery/internal/xmlrpc"
)

// TestObservabilityEndToEndUnderDrops is the acceptance scenario of the
// observability layer: a distributed experiment under ~30% control-channel
// drop rate is watched live through the obs HTTP endpoints while it runs,
// the final /metrics exposition must agree with the run report's
// ControlSummary, and every run must leave a trace.json artifact whose
// span tree covers prepare → execute → clean-up and converts to a valid
// Chrome trace.
func TestObservabilityEndToEndUnderDrops(t *testing.T) {
	e := desc.OneShot(30)
	e.Repl.Count = 6

	// --- node host side, with failpoints on both server paths ---
	var host *Host
	x, err := core.New(e, core.Options{
		RealTime: true,
		Speed:    0.002,
		OnEvent:  func(ev eventlog.Event) { host.ForwardEvent(ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	host = NewHost(x)
	defer host.Close()

	hostReg := obs.NewRegistry()
	host.Instrument(hostReg)
	srv := host.Server()
	fp := failpoint.New(42)
	fp.Enable(failpoint.SiteServerRecv, failpoint.Rule{Prob: 0.15, Act: failpoint.Drop})
	fp.Enable(failpoint.SiteServerSend, failpoint.Rule{Prob: 0.15, Act: failpoint.Drop})
	srv.FP = fp

	hostHTTP := httptest.NewServer(srv)
	defer hostHTTP.Close()
	hostObsHTTP := httptest.NewServer(obs.NewMux(hostReg, func() any { return host.Status() }))
	defer hostObsHTTP.Close()
	x.S.SetKeepAlive(true)
	hostDone := make(chan error, 1)
	go func() { hostDone <- x.S.Run() }()
	defer x.S.Stop()

	// --- master side, fully instrumented ---
	ms := sched.New(sched.RealTime, time.Unix(0, 0))
	ms.SetSpeed(0.002)
	bus := eventlog.NewBus(ms)
	reg := obs.NewRegistry()
	status := obs.NewStatus(nil)
	tracer := obs.NewTracer(ms.Now)
	bus.Instrument(reg)
	masterHTTP := httptest.NewServer(MasterServer(ms, bus))
	defer masterHTTP.Close()
	obsHTTP := httptest.NewServer(obs.NewMux(reg, func() any { return status.Snapshot() }))
	defer obsHTTP.Close()

	policy := xmlrpc.RetryPolicy{
		MaxAttempts: 8,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  8 * time.Millisecond,
		Seed:        7,
	}
	newClient := func() *xmlrpc.Client {
		c := xmlrpc.NewRetryingClient(hostHTTP.URL, policy)
		c.Obs = reg
		return c
	}
	hostClient := newClient()
	if _, err := hostClient.Call("host.set_master", masterHTTP.URL); err != nil {
		t.Fatal(err)
	}
	nodesV, err := hostClient.Call("host.nodes")
	if err != nil {
		t.Fatal(err)
	}
	handles := map[string]master.NodeHandle{}
	clients := []*xmlrpc.Client{hostClient}
	for _, v := range nodesV.([]any) {
		id := v.(string)
		c := newClient()
		clients = append(clients, c)
		handles[id] = &RemoteNode{NodeID: id, C: c}
	}
	envClient := newClient()
	clients = append(clients, envClient)

	st, err := store.NewRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, err := master.New(master.Config{
		Exp: e, S: ms, Bus: bus, Nodes: handles,
		Env:    &RemoteEnv{C: envClient},
		Store:  st,
		Retry:  master.RetryPolicy{MaxAttempts: 4, QuarantineAfter: 6},
		Tracer: tracer, Status: status, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Live watcher: poll /status while the experiment executes, the way an
	// operator's dashboard would.
	getJSON := func(url string, into any) error {
		resp, err := http.Get(url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode != 200 {
			return fmt.Errorf("GET %s: %d %s", url, resp.StatusCode, body)
		}
		return json.Unmarshal(body, into)
	}
	pollStop := make(chan struct{})
	pollDone := make(chan struct{})
	var sawRunning, sawRun, sawPhase, sawNode bool
	go func() {
		defer close(pollDone)
		for {
			select {
			case <-pollStop:
				return
			default:
			}
			var snap obs.Snapshot
			if err := getJSON(obsHTTP.URL+"/status", &snap); err != nil {
				continue
			}
			if snap.State == "running" {
				sawRunning = true
			}
			if snap.Run >= 0 {
				sawRun = true
			}
			switch snap.Phase {
			case "prepare", "execute", "cleanup":
				sawPhase = true
			}
			if len(snap.Nodes) > 0 {
				sawNode = true
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var rep *master.Report
	var runErr error
	ms.Go("experimaster", func() { rep, runErr = m.RunAll() })
	if err := ms.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	close(pollStop)
	<-pollDone

	if want := len(rep.Results); rep.Completed != want || want != 6 {
		t.Fatalf("completed %d/%d runs under 30%% drop rate", rep.Completed, want)
	}
	if !sawRunning || !sawRun || !sawPhase || !sawNode {
		t.Fatalf("live /status never showed running=%v run=%v phase=%v nodes=%v",
			sawRunning, sawRun, sawPhase, sawNode)
	}

	// Final /status: experiment done, run accounting matches the report.
	var final obs.Snapshot
	if err := getJSON(obsHTTP.URL+"/status", &final); err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || final.RunsCompleted != rep.Completed ||
		final.RunsRetried != rep.Retried || final.RunsTotal != len(rep.Results) {
		t.Fatalf("final /status = %+v vs report completed=%d retried=%d",
			final, rep.Completed, rep.Retried)
	}

	// /metrics must tell the same story as the report's ControlSummary.
	cs := metrics.ControlSummary(rep)
	resp, err := http.Get(obsHTTP.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	exposition := string(body)
	for _, want := range []string{
		fmt.Sprintf("excovery_runs_completed_total %d", cs.Completed),
		fmt.Sprintf("excovery_run_attempts_total %d", cs.Attempts),
		fmt.Sprintf("excovery_health_probes_total %d", cs.HealthProbes),
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if cs.Retried > 0 &&
		!strings.Contains(exposition, fmt.Sprintf("excovery_runs_retried_total %d", cs.Retried)) {
		t.Errorf("/metrics retried series disagrees with summary %d", cs.Retried)
	}
	// The drops were real, and the instrumented clients counted them.
	var retries int64
	for _, c := range clients {
		retries += c.Stats().Retries
	}
	if retries == 0 {
		t.Fatal("no retries recorded — failpoints never fired?")
	}
	if got := reg.CounterTotal("excovery_rpc_client_retries_total"); got != retries {
		t.Fatalf("rpc retry counter = %d, client stats say %d", got, retries)
	}
	if reg.CounterTotal("excovery_eventbus_published_total") == 0 {
		t.Fatal("event bus instrumentation saw no events")
	}

	// Host-side endpoints: health and status documents are live too.
	if resp, err := http.Get(hostObsHTTP.URL + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("host /healthz: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}
	var hs HostStatus
	if err := getJSON(hostObsHTTP.URL+"/status", &hs); err != nil {
		t.Fatal(err)
	}
	if len(hs.Nodes) == 0 || !hs.MasterSet {
		t.Fatalf("host /status = %+v", hs)
	}
	if hostReg.CounterTotal("excovery_rpc_server_requests_total") == 0 {
		t.Fatal("host server instrumentation saw no requests")
	}

	// Every run's trace artifact reaches level 3 and covers the three
	// phases of every attempt that got past preflight.
	db, err := m.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range rep.Results {
		extras, err := db.ExtrasOfRun(rr.Run.ID)
		if err != nil {
			t.Fatal(err)
		}
		var spans []obs.Span
		for _, xm := range extras {
			if xm.Name == "trace.json" {
				spans, err = obs.UnmarshalSpans(xm.Content)
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		if spans == nil {
			t.Fatalf("run %d has no trace.json artifact", rr.Run.ID)
		}
		byID := map[uint64]obs.Span{}
		for _, sp := range spans {
			byID[sp.ID] = sp
		}
		for attempt := 1; attempt <= rr.Attempts; attempt++ {
			var runSpan *obs.Span
			for i := range spans {
				if spans[i].Cat == "run" && spans[i].Attempt == attempt {
					runSpan = &spans[i]
					break
				}
			}
			if runSpan == nil {
				t.Fatalf("run %d attempt %d: no run span", rr.Run.ID, attempt)
			}
			if runSpan.Args["seed"] == "" {
				t.Fatalf("run %d attempt %d: run span lacks seed annotation", rr.Run.ID, attempt)
			}
			phases := map[string]bool{}
			actions := 0
			for _, sp := range spans {
				if sp.Attempt != attempt {
					continue
				}
				if sp.Cat == "phase" && sp.Parent == runSpan.ID {
					phases[sp.Name] = true
				}
				if sp.Cat == "action" {
					actions++
				}
			}
			// Every attempt at least entered preparation; attempts that
			// passed preflight (always true for the final, successful one)
			// must show the full three-phase tree.
			want := []string{"prepare"}
			if phases["execute"] || attempt == rr.Attempts {
				want = []string{"prepare", "execute", "cleanup"}
			}
			for _, ph := range want {
				if !phases[ph] {
					t.Fatalf("run %d attempt %d: phase %q missing from span tree (have %v)",
						rr.Run.ID, attempt, ph, phases)
				}
			}
			if attempt == rr.Attempts && actions == 0 {
				t.Fatalf("run %d attempt %d: no action spans", rr.Run.ID, attempt)
			}
		}

		// The artifact converts to a loadable Chrome trace.
		var doc struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(obs.ChromeTrace(spans), &doc); err != nil {
			t.Fatalf("run %d: chrome trace invalid: %v", rr.Run.ID, err)
		}
		if len(doc.TraceEvents) < len(spans) {
			t.Fatalf("run %d: chrome trace has %d events for %d spans",
				rr.Run.ID, len(doc.TraceEvents), len(spans))
		}
	}

	x.S.Stop()
	<-hostDone
}

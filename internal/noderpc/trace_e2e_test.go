package noderpc

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"excovery/internal/core"
	"excovery/internal/desc"
	"excovery/internal/eventlog"
	"excovery/internal/master"
	"excovery/internal/obs"
	"excovery/internal/sched"
	"excovery/internal/store"
	"excovery/internal/xmlrpc"

	"net/http/httptest"
)

// TestTracePropagationAndFanIn is the acceptance scenario of the
// cross-process data-path observability: a distributed experiment must
// produce, for every run, (a) one merged trace.json whose host-side RPC
// spans parent under the master's span tree via the trace_parent wire
// parameter, rendering as separate per-process tracks in the Chrome
// export, and (b) a campaign_metrics.json fan-in artifact carrying the
// host's emulator metrics, re-exported into the master's registry.
func TestTracePropagationAndFanIn(t *testing.T) {
	e := desc.OneShot(30)
	e.Repl.Count = 2

	// --- node host, with the emulator data path instrumented ---
	var host *Host
	hostReg := obs.NewRegistry()
	x, err := core.New(e, core.Options{
		RealTime: true,
		Speed:    0.002,
		OnEvent:  func(ev eventlog.Event) { host.ForwardEvent(ev) },
		Metrics:  hostReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	host = NewHost(x)
	defer host.Close()
	host.Instrument(hostReg)

	hostHTTP := httptest.NewServer(host.Server())
	defer hostHTTP.Close()
	x.S.SetKeepAlive(true)
	hostDone := make(chan error, 1)
	go func() { hostDone <- x.S.Run() }()
	defer x.S.Stop()

	// --- master ---
	ms := sched.New(sched.RealTime, time.Unix(0, 0))
	ms.SetSpeed(0.002)
	bus := eventlog.NewBus(ms)
	reg := obs.NewRegistry()
	status := obs.NewStatus(nil)
	tracer := obs.NewTracer(ms.Now)
	masterHTTP := httptest.NewServer(MasterServer(ms, bus))
	defer masterHTTP.Close()

	policy := xmlrpc.RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  8 * time.Millisecond,
		Seed:        3,
	}
	hostClient := xmlrpc.NewRetryingClient(hostHTTP.URL, policy)
	if _, err := hostClient.Call("host.set_master", masterHTTP.URL); err != nil {
		t.Fatal(err)
	}
	nodesV, err := hostClient.Call("host.nodes")
	if err != nil {
		t.Fatal(err)
	}
	handles := map[string]master.NodeHandle{}
	var nodeIDs []string
	for _, v := range nodesV.([]any) {
		id := v.(string)
		nodeIDs = append(nodeIDs, id)
		handles[id] = &RemoteNode{NodeID: id,
			C: xmlrpc.NewRetryingClient(hostHTTP.URL, policy)}
	}
	if len(nodeIDs) == 0 {
		t.Fatal("host serves no nodes")
	}

	st, err := store.NewRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, err := master.New(master.Config{
		Exp: e, S: ms, Bus: bus, Nodes: handles,
		Fanout: len(handles),
		Env:    &RemoteEnv{C: xmlrpc.NewRetryingClient(hostHTTP.URL, policy)},
		Store:  st,
		Tracer: tracer, Status: status, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	var rep *master.Report
	var runErr error
	ms.Go("experimaster", func() { rep, runErr = m.RunAll() })
	if err := ms.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if rep.Completed != len(rep.Results) {
		t.Fatalf("completed %d/%d runs", rep.Completed, len(rep.Results))
	}

	db, err := m.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range rep.Results {
		extras, err := db.ExtrasOfRun(rr.Run.ID)
		if err != nil {
			t.Fatal(err)
		}
		var spans []obs.Span
		var campaign []byte
		for _, xm := range extras {
			switch xm.Name {
			case "trace.json":
				if spans, err = obs.UnmarshalSpans(xm.Content); err != nil {
					t.Fatal(err)
				}
			case "campaign_metrics.json":
				campaign = xm.Content
			}
		}
		if spans == nil {
			t.Fatalf("run %d: no trace.json", rr.Run.ID)
		}

		// The merged trace carries both processes.
		byID := map[uint64]obs.Span{}
		masterSpans, hostSpans := 0, 0
		for _, sp := range spans {
			byID[sp.ID] = sp
			switch {
			case sp.Track == "master":
				masterSpans++
			case strings.HasPrefix(sp.Track, "host"):
				hostSpans++
			}
		}
		if masterSpans == 0 || hostSpans == 0 {
			t.Fatalf("run %d: merged trace has %d master and %d host spans",
				rr.Run.ID, masterSpans, hostSpans)
		}

		// Cross-RPC parent links: every host-side node.prepare_run span of
		// this run must parent under the master's matching per-node rpc
		// span ("prepare <id>"), and host execute spans under the master's
		// execute phase span.
		prepLinked, execLinked := 0, 0
		for _, sp := range spans {
			if !strings.HasPrefix(sp.Track, "host") {
				continue
			}
			parent, ok := byID[sp.Parent]
			switch sp.Name {
			case "node.prepare_run":
				if !ok || parent.Track != "master" || parent.Cat != "rpc" ||
					!strings.HasPrefix(parent.Name, "prepare ") {
					t.Fatalf("run %d: host span %q parent=%d does not link to a master prepare rpc span (parent=%+v)",
						rr.Run.ID, sp.Name, sp.Parent, parent)
				}
				prepLinked++
			case "node.execute":
				if !ok || parent.Track != "master" || parent.Cat != "phase" ||
					parent.Name != "execute" {
					t.Fatalf("run %d: host execute span parent=%d is not the master execute phase (parent=%+v)",
						rr.Run.ID, sp.Parent, parent)
				}
				execLinked++
			}
		}
		if prepLinked < len(nodeIDs) {
			t.Fatalf("run %d: only %d/%d node.prepare_run spans linked",
				rr.Run.ID, prepLinked, len(nodeIDs))
		}
		if execLinked == 0 {
			t.Fatalf("run %d: no host execute spans linked under the execute phase", rr.Run.ID)
		}

		// The Chrome export keeps the processes on separate tracks.
		var doc struct {
			TraceEvents []struct {
				Name string            `json:"name"`
				Ph   string            `json:"ph"`
				Args map[string]string `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(obs.ChromeTrace(spans), &doc); err != nil {
			t.Fatal(err)
		}
		lanes := map[string]bool{}
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "M" && ev.Name == "thread_name" {
				lanes[ev.Args["name"]] = true
			}
		}
		hostLane := false
		for name := range lanes {
			if strings.HasPrefix(name, "host") {
				hostLane = true
			}
		}
		if !lanes["master"] || !hostLane {
			t.Fatalf("run %d: chrome trace lanes = %v, want master + host", rr.Run.ID, lanes)
		}

		// Fan-in artifact: the host's emulator metrics arrived.
		if campaign == nil {
			t.Fatalf("run %d: no campaign_metrics.json", rr.Run.ID)
		}
		var cd struct {
			Run     int `json:"run"`
			Sources map[string]struct {
				Nodes  []string          `json:"nodes"`
				Points []obs.MetricPoint `json:"points"`
			} `json:"sources"`
			Fleet map[string]float64 `json:"fleet"`
		}
		if err := json.Unmarshal(campaign, &cd); err != nil {
			t.Fatalf("run %d: campaign_metrics.json: %v", rr.Run.ID, err)
		}
		if cd.Run != rr.Run.ID || len(cd.Sources) != 1 {
			t.Fatalf("run %d: campaign doc run=%d sources=%d", rr.Run.ID, cd.Run, len(cd.Sources))
		}
		for _, src := range cd.Sources {
			if len(src.Nodes) != len(nodeIDs) {
				t.Fatalf("run %d: source reports %d nodes, want %d",
					rr.Run.ID, len(src.Nodes), len(nodeIDs))
			}
		}
		if cd.Fleet["netem_packets_sent_total"] <= 0 {
			t.Fatalf("run %d: fleet rollup missing emulator series: %v", rr.Run.ID, cd.Fleet)
		}
	}

	// The fan-in also re-exported into the master's live registry.
	if got := reg.CounterTotal(obs.MCampaignFanins); got != int64(rep.Completed) {
		t.Fatalf("fan-ins = %d, want %d", got, rep.Completed)
	}
	found := false
	for _, p := range reg.Snapshot() {
		if strings.HasPrefix(p.Name, obs.MNodePrefix+"netem_") && p.Value > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("master registry has no re-exported excovery_node_netem_* series")
	}
	if status.Snapshot().NodesReporting != 1 {
		t.Fatalf("status nodes_reporting = %d, want 1", status.Snapshot().NodesReporting)
	}

	x.S.Stop()
	<-hostDone
}

package noderpc

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"excovery/internal/core"
	"excovery/internal/desc"
	"excovery/internal/eventlog"
	"excovery/internal/failpoint"
	"excovery/internal/master"
	"excovery/internal/sched"
	"excovery/internal/xmlrpc"
)

// TestRemoteNodeRecoversAfterTransientError is the regression for the
// sticky-error bug: a single transport failure used to poison the handle
// for the rest of the experiment. Per-run accounting must clear on the
// next PrepareRun while the lifetime counter keeps the history.
func TestRemoteNodeRecoversAfterTransientError(t *testing.T) {
	srv := xmlrpc.NewServer()
	srv.Register("node.prepare_run", func(params []any) (any, error) { return true, nil })
	fp := failpoint.New(1)
	// Sever exactly the first request before it reaches the handler.
	fp.Enable(failpoint.SiteServerRecv, failpoint.Rule{Prob: 1, Act: failpoint.Drop, Count: 1})
	srv.FP = fp
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rn := &RemoteNode{NodeID: "A", C: xmlrpc.NewClient(ts.URL)} // no retries
	rn.PrepareRun(0)
	if rn.Err() == nil {
		t.Fatal("dropped prepare_run did not record an error")
	}
	if rn.TotalErrCount() != 1 {
		t.Fatalf("total errors = %d, want 1", rn.TotalErrCount())
	}
	// Next run starts clean and the channel has healed.
	rn.PrepareRun(1)
	if err := rn.Err(); err != nil {
		t.Fatalf("error stuck across runs: %v", err)
	}
	if rn.ErrCount() != 0 || rn.TotalErrCount() != 1 {
		t.Fatalf("counts = %d/%d, want 0/1", rn.ErrCount(), rn.TotalErrCount())
	}
}

// TestDistributedResilienceUnderDrops is the acceptance scenario: the
// control channel drops ~30% of master→host calls (15% before the
// handler, 15% on the response path), yet 10 runs all complete because
// the retrying clients replay each call under its idempotency key and
// the server deduplicates re-deliveries. No action may execute twice.
func TestDistributedResilienceUnderDrops(t *testing.T) {
	e := desc.OneShot(30)
	e.Repl.Count = 10

	// --- node host side ---
	var host *Host
	x, err := core.New(e, core.Options{
		RealTime: true,
		Speed:    0.002,
		OnEvent:  func(ev eventlog.Event) { host.ForwardEvent(ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	host = NewHost(x)
	defer host.Close()

	srv := host.Server()
	fp := failpoint.New(42)
	fp.Enable(failpoint.SiteServerRecv, failpoint.Rule{Prob: 0.15, Act: failpoint.Drop})
	fp.Enable(failpoint.SiteServerSend, failpoint.Rule{Prob: 0.15, Act: failpoint.Drop})
	srv.FP = fp

	// Every handler execution is recorded under its idempotency key;
	// dedup replays bypass OnDispatch, so a key seen twice means a
	// retried call really ran twice.
	var dispatchMu sync.Mutex
	execs := map[string]int{}
	srv.OnDispatch = func(method, key string) {
		dispatchMu.Lock()
		defer dispatchMu.Unlock()
		if key != "" {
			execs[key]++
		}
	}

	hostHTTP := httptest.NewServer(srv)
	defer hostHTTP.Close()
	x.S.SetKeepAlive(true)
	hostDone := make(chan error, 1)
	go func() { hostDone <- x.S.Run() }()
	defer x.S.Stop()

	// --- master side ---
	ms := sched.New(sched.RealTime, time.Unix(0, 0))
	ms.SetSpeed(0.002)
	bus := eventlog.NewBus(ms)
	masterHTTP := httptest.NewServer(MasterServer(ms, bus))
	defer masterHTTP.Close()

	policy := xmlrpc.RetryPolicy{
		MaxAttempts: 8,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  8 * time.Millisecond,
		Seed:        7,
	}
	hostClient := xmlrpc.NewRetryingClient(hostHTTP.URL, policy)
	if _, err := hostClient.Call("host.set_master", masterHTTP.URL); err != nil {
		t.Fatal(err)
	}
	nodesV, err := hostClient.Call("host.nodes")
	if err != nil {
		t.Fatal(err)
	}
	handles := map[string]master.NodeHandle{}
	clients := []*xmlrpc.Client{hostClient}
	for _, v := range nodesV.([]any) {
		id := v.(string)
		c := xmlrpc.NewRetryingClient(hostHTTP.URL, policy)
		clients = append(clients, c)
		handles[id] = &RemoteNode{NodeID: id, C: c}
	}
	envClient := xmlrpc.NewRetryingClient(hostHTTP.URL, policy)
	clients = append(clients, envClient)

	m, err := master.New(master.Config{
		Exp: e, S: ms, Bus: bus, Nodes: handles,
		Env:   &RemoteEnv{C: envClient},
		Retry: master.RetryPolicy{MaxAttempts: 3},
	})
	if err != nil {
		t.Fatal(err)
	}

	var rep *master.Report
	var runErr error
	ms.Go("experimaster", func() { rep, runErr = m.RunAll() })
	if err := ms.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}

	if want := len(rep.Results); rep.Completed != want || want != 10 {
		t.Fatalf("completed %d/%d runs under 30%% drop rate", rep.Completed, want)
	}
	// The drops were real: the clients had to retry...
	var retries int64
	for _, c := range clients {
		retries += c.Stats().Retries
	}
	if retries == 0 {
		t.Fatal("no retries recorded — failpoints never fired?")
	}
	// ...and some response-path drops forced dedup replays.
	if st := srv.Stats(); st.DedupReplays == 0 {
		t.Fatalf("no dedup replays (server stats: %+v)", st)
	}
	// At-most-once: no idempotency key's handler ran twice.
	dispatchMu.Lock()
	defer dispatchMu.Unlock()
	dups := 0
	for _, n := range execs {
		if n > 1 {
			dups++
		}
	}
	if dups > 0 {
		t.Fatalf("%d of %d calls executed more than once", dups, len(execs))
	}
	x.S.Stop()
	<-hostDone
}

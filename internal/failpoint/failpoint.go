// Package failpoint is a deterministic fault-injection registry for the
// control channel. The XML-RPC client and server consult named sites on
// every exchange; enabled rules decide — from a seeded PRNG, so runs are
// replayable like the treatment plan (§IV-C) — whether the exchange is
// dropped, delayed or answered with a server error.
//
// Each site draws from its own PRNG stream (derived from the registry seed
// and the site name), so the decision sequence at one site does not depend
// on how often other sites are evaluated. With a fixed seed and a fixed
// per-site evaluation order, every injected fault — and therefore every
// retry a client performs — reproduces exactly.
package failpoint

import (
	"hash/fnv"
	"math/rand"
	"sync"
	"time"
)

// Action is what happens when a rule fires.
type Action int

const (
	// None leaves the exchange untouched.
	None Action = iota
	// Drop severs the exchange: the server aborts the connection, the
	// client fails with a synthetic network error.
	Drop
	// Delay stalls the exchange for the rule's Delay.
	Delay
	// Error answers with an HTTP server error (rule Code, default 503).
	Error
	// Crash hard-stops the process at the site (crash-recovery drills).
	// Transport sites ignore it; the master run loop honors it between
	// the write-ahead journal record and the attempt's execution.
	Crash
)

func (a Action) String() string {
	switch a {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Error:
		return "error"
	case Crash:
		return "crash"
	}
	return "unknown"
}

// Sites consulted by the internal/xmlrpc transport.
const (
	// SiteClientSend is evaluated by the client before a request is sent;
	// Drop simulates a request lost before reaching the server.
	SiteClientSend = "rpc.client.send"
	// SiteServerRecv is evaluated by the server before the request body is
	// read; Drop and Error simulate faults before the handler executes.
	SiteServerRecv = "rpc.server.recv"
	// SiteServerSend is evaluated by the server before the response is
	// written — after the handler executed. Drop here is the case
	// idempotency deduplication exists for: the action was applied but the
	// caller never learns of it.
	SiteServerSend = "rpc.server.send"
	// SiteMasterAttempt is evaluated by the master between writing the
	// run_attempt_begin journal record and executing the attempt. Crash
	// here simulates a master process killed mid-run: the journal holds a
	// dangling attempt that resume must detect and re-execute.
	SiteMasterAttempt = "master.run.attempt"
)

// Rule is one enabled fault at a site.
type Rule struct {
	// Prob is the firing probability per evaluation in [0, 1].
	Prob float64
	// Act is the injected fault.
	Act Action
	// Delay is the stall for Act == Delay.
	Delay time.Duration
	// Code is the HTTP status for Act == Error; 0 means 503.
	Code int
	// Count limits how often the rule fires; 0 means unlimited.
	Count int
	// Skip suppresses the rule's first matches: the rule only starts
	// firing after it would have fired Skip times. With Prob 1 this pins
	// a fault to an exact evaluation ("crash at the Nth attempt").
	Skip int
}

// Decision is the outcome of one site evaluation.
type Decision struct {
	Act   Action
	Delay time.Duration
	Code  int
}

type site struct {
	rng     *rand.Rand
	rules   []Rule
	fired   []int // per-rule firing count
	skipped []int // per-rule matches suppressed by Rule.Skip
	evals   int
	hits    int
}

// Registry holds the enabled rules. The zero registry pointer is valid:
// Eval on a nil *Registry never fires, so production code paths carry no
// conditional wiring.
type Registry struct {
	mu    sync.Mutex
	seed  int64
	sites map[string]*site
}

// New creates a registry whose decisions derive from seed.
func New(seed int64) *Registry {
	return &Registry{seed: seed, sites: map[string]*site{}}
}

func (r *Registry) site(name string) *site {
	s := r.sites[name]
	if s == nil {
		h := fnv.New64a()
		h.Write([]byte(name))
		s = &site{rng: rand.New(rand.NewSource(r.seed ^ int64(h.Sum64())))}
		r.sites[name] = s
	}
	return s
}

// Enable appends a rule at a site. Rules are evaluated in order; the first
// one that fires wins.
func (r *Registry) Enable(name string, rule Rule) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.site(name)
	s.rules = append(s.rules, rule)
	s.fired = append(s.fired, 0)
	s.skipped = append(s.skipped, 0)
}

// Disable removes all rules at a site. The site's PRNG stream is kept so
// re-enabling continues deterministically.
func (r *Registry) Disable(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s := r.sites[name]; s != nil {
		s.rules, s.fired, s.skipped = nil, nil, nil
	}
}

// Eval draws a decision for one exchange at a site. Safe on a nil
// registry, which never fires.
func (r *Registry) Eval(name string) Decision {
	if r == nil {
		return Decision{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.sites[name]
	if s == nil || len(s.rules) == 0 {
		return Decision{}
	}
	s.evals++
	for i, rule := range s.rules {
		if rule.Count > 0 && s.fired[i] >= rule.Count {
			continue
		}
		if s.rng.Float64() >= rule.Prob {
			continue
		}
		if s.skipped[i] < rule.Skip {
			s.skipped[i]++
			continue
		}
		s.fired[i]++
		s.hits++
		d := Decision{Act: rule.Act, Delay: rule.Delay, Code: rule.Code}
		if d.Act == Error && d.Code == 0 {
			d.Code = 503
		}
		return d
	}
	return Decision{}
}

// Evals returns how often a site was evaluated.
func (r *Registry) Evals(name string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s := r.sites[name]; s != nil {
		return s.evals
	}
	return 0
}

// Fired returns how often any rule at a site fired.
func (r *Registry) Fired(name string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s := r.sites[name]; s != nil {
		return s.hits
	}
	return 0
}

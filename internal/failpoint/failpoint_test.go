package failpoint

import (
	"testing"
	"time"
)

func drawSequence(seed int64, n int) []Action {
	r := New(seed)
	r.Enable(SiteServerRecv, Rule{Prob: 0.3, Act: Drop})
	out := make([]Action, n)
	for i := range out {
		out[i] = r.Eval(SiteServerRecv).Act
	}
	return out
}

func TestDeterministicPerSeed(t *testing.T) {
	a := drawSequence(7, 200)
	b := drawSequence(7, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := drawSequence(8, 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical decision sequences")
	}
	fires := 0
	for _, act := range a {
		if act == Drop {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("0.3-probability rule fired %d/%d times", fires, len(a))
	}
}

func TestSiteStreamsIndependent(t *testing.T) {
	// Evaluating another site must not shift a site's decision stream.
	a := drawSequence(7, 50)
	r := New(7)
	r.Enable(SiteServerRecv, Rule{Prob: 0.3, Act: Drop})
	r.Enable(SiteClientSend, Rule{Prob: 0.5, Act: Drop})
	for i := 0; i < 50; i++ {
		r.Eval(SiteClientSend) // interleaved noise
		if got := r.Eval(SiteServerRecv).Act; got != a[i] {
			t.Fatalf("decision %d shifted by other-site evals: %v vs %v", i, got, a[i])
		}
	}
}

func TestCountLimitAndDisable(t *testing.T) {
	r := New(1)
	r.Enable("x", Rule{Prob: 1, Act: Error, Count: 2})
	for i := 0; i < 2; i++ {
		if d := r.Eval("x"); d.Act != Error || d.Code != 503 {
			t.Fatalf("eval %d = %+v", i, d)
		}
	}
	if d := r.Eval("x"); d.Act != None {
		t.Fatalf("count-limited rule still fires: %+v", d)
	}
	if r.Fired("x") != 2 || r.Evals("x") != 3 {
		t.Fatalf("fired=%d evals=%d", r.Fired("x"), r.Evals("x"))
	}

	r.Enable("x", Rule{Prob: 1, Act: Delay, Delay: time.Second})
	if d := r.Eval("x"); d.Act != Delay || d.Delay != time.Second {
		t.Fatalf("re-enabled rule: %+v", d)
	}
	r.Disable("x")
	if d := r.Eval("x"); d.Act != None {
		t.Fatalf("disabled site fires: %+v", d)
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	if d := r.Eval(SiteClientSend); d.Act != None {
		t.Fatalf("nil registry fired: %+v", d)
	}
	if r.Fired("x") != 0 || r.Evals("x") != 0 {
		t.Fatal("nil registry counts")
	}
}

func TestSkipDelaysFirstFire(t *testing.T) {
	r := New(1)
	// Prob 1 with Skip 2: evaluations 1 and 2 match but are suppressed,
	// evaluation 3 fires, and Count 1 stops it afterwards — "crash at
	// exactly the third attempt".
	r.Enable(SiteMasterAttempt, Rule{Prob: 1, Act: Crash, Skip: 2, Count: 1})
	var acts []Action
	for i := 0; i < 5; i++ {
		acts = append(acts, r.Eval(SiteMasterAttempt).Act)
	}
	want := []Action{None, None, Crash, None, None}
	for i := range want {
		if acts[i] != want[i] {
			t.Fatalf("eval %d = %v, want %v (all: %v)", i+1, acts[i], want[i], acts)
		}
	}
	if got := r.Fired(SiteMasterAttempt); got != 1 {
		t.Fatalf("fired = %d, want 1", got)
	}
}

func TestCrashActionString(t *testing.T) {
	if Crash.String() != "crash" {
		t.Fatalf("Crash.String() = %q", Crash.String())
	}
}

GO ?= go
DATE := $(shell date +%Y%m%d)

.PHONY: build test check vet race bench fmt lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# fmt fails when any file is not gofmt-clean, printing the offenders.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint runs the repo's invariant linter (DESIGN.md §10): repeatability and
# durability contracts as machine-checked rules. Exit 1 on any finding.
lint:
	$(GO) run ./cmd/excovery-lint ./...

# check is the tier-1 gate (see ROADMAP.md): formatting, static analysis
# (go vet plus the invariant linter), and the full suite under the race
# detector.
check: fmt vet lint race

# bench records all benchmarks (with allocations) as a dated JSON stream
# of go test events, comparable across sessions with benchstat-style
# tooling or plain jq.
bench:
	$(GO) test -json -run='^$$' -bench=. -benchmem ./... | tee BENCH_$(DATE).json

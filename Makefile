GO ?= go

.PHONY: build test check vet race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the tier-1 gate (see ROADMAP.md): static analysis plus the
# full suite under the race detector.
check: vet race

bench:
	$(GO) test -bench=. -benchmem ./...

GO ?= go
DATE := $(shell date +%Y%m%d)

.PHONY: build test check vet race bench bench-smoke bench-gate fmt lint validate-descriptions

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# fmt fails when any file is not gofmt-clean, printing the offenders.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint runs the repo's invariant linter (DESIGN.md §10, §15): the
# whole-program fact-based driver type-checks dependency-ready packages in
# parallel and runs all ten checks module-wide. Exit 1 on any finding,
# exit 2 when any package fails to load (partial analysis never passes).
# TestLoadTimingGuard in internal/lint keeps the whole-module run inside
# its time budget and asserts the driver actually runs parallel.
lint:
	$(GO) run ./cmd/excovery-lint ./...

# validate-descriptions runs excovery-validate over every shipped
# description, so a scenario that no longer validates fails the gate the
# same way a broken test would ("Experiments as Code").
validate-descriptions:
	@set -e; for f in descriptions/*.xml; do \
		$(GO) run ./cmd/excovery-validate $$f >/dev/null; \
		echo "validated $$f"; \
	done

# check is the tier-1 gate (see ROADMAP.md): formatting, static analysis
# (go vet plus the invariant linter), description validation, and the
# full suite under the race detector.
check: fmt vet lint validate-descriptions race

# bench records all benchmarks (with allocations) as a dated JSON stream
# of go test events, comparable across sessions with excovery-bench or
# plain jq. It also appends a one-line Fig. 3 allocs/op delta against the
# newest prior BENCH_*.json to CHANGES.md.
bench:
	$(GO) test -json -run='^$$' -bench=. -benchmem ./... | tee BENCH_$(DATE).json
	@$(GO) run ./cmd/excovery-bench -changes BENCH_$(DATE).json >> CHANGES.md && tail -1 CHANGES.md

# bench-gate replays the gate CI runs: a fresh recording checked against
# bench-thresholds.json vs the newest committed BENCH_*.json. 20
# iterations amortize per-benchmark setup so allocs/op and B/op are
# comparable with the committed full-length recordings (-benchtime=1x
# would charge the whole setup to a single op); timing units are not
# gated.
bench-gate:
	$(GO) test -json -run='^$$' -bench=. -benchtime=20x -benchmem ./... > BENCH_gate.json
	@$(GO) run ./cmd/excovery-bench -check bench-thresholds.json BENCH_gate.json; \
		rc=$$?; rm -f BENCH_gate.json; exit $$rc

# bench-smoke runs every benchmark exactly once — no timings, just proof
# that none of them panic or fail. Wired into CI.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

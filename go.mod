module excovery

go 1.22

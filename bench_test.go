// Package excovery's benchmark harness regenerates every table and figure
// artifact of the paper (see DESIGN.md §4 and EXPERIMENTS.md). Figures 1-3
// and 12 are architecture concepts exercised as end-to-end pipelines;
// Figures 4-11 and Table I are executable descriptions, processes and
// storage; experiments A-D reproduce the case-study result series.
// Parameter sweeps appear as sub-benchmarks so the benchmark output reads
// as the corresponding result table: run
//
//	go test -bench=. -benchmem
package excovery

import (
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"excovery/internal/core"
	"excovery/internal/desc"
	"excovery/internal/eventlog"
	"excovery/internal/failpoint"
	"excovery/internal/master"
	"excovery/internal/metrics"
	"excovery/internal/netem"
	"excovery/internal/noderpc"
	"excovery/internal/sched"
	"excovery/internal/store"
	"excovery/internal/store/reldb"
	"excovery/internal/xmlrpc"
)

// runExperiment executes a description on the emulated platform and
// returns the extracted metrics.
func runExperiment(b *testing.B, e *desc.Experiment, opts core.Options) []metrics.RunMetric {
	b.Helper()
	x, err := core.New(e, opts)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		b.Fatal(err)
	}
	return metrics.FromReport(e, rep, "", "")
}

// reportDiscovery attaches t_R and responsiveness metrics to a benchmark.
func reportDiscovery(b *testing.B, ms []metrics.RunMetric, deadline time.Duration) {
	b.Helper()
	trs := metrics.TRs(ms)
	if len(trs) > 0 {
		sum := metrics.Summarize(metrics.DurationsToSeconds(trs))
		b.ReportMetric(sum.Mean*1000, "t_R_ms")
		b.ReportMetric(sum.P90*1000, "t_R_p90_ms")
	}
	b.ReportMetric(metrics.Responsiveness(ms, deadline), "R")
}

// BenchmarkFig11OneShot regenerates the one-shot discovery of Fig. 11: one
// run per iteration, reporting the discovery time t_R.
func BenchmarkFig11OneShot(b *testing.B) {
	var all []metrics.RunMetric
	for i := 0; i < b.N; i++ {
		e := desc.OneShot(30)
		all = append(all, runExperiment(b, e, core.Options{Seed: int64(i + 1)})...)
	}
	reportDiscovery(b, all, time.Second)
}

// BenchmarkFig2ArchitectureComparison contrasts the two SD architectures
// of Fig. 2 on an otherwise identical one-shot scenario.
func BenchmarkFig2ArchitectureComparison(b *testing.B) {
	cases := []struct {
		name string
		exp  func(int) *desc.Experiment
	}{
		{"two-party", func(seed int) *desc.Experiment { return desc.OneShot(30) }},
		{"three-party", func(seed int) *desc.Experiment { return desc.ThreeParty(30, 1) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var all []metrics.RunMetric
			for i := 0; i < b.N; i++ {
				all = append(all, runExperiment(b, c.exp(i), core.Options{Seed: int64(i + 1)})...)
			}
			reportDiscovery(b, all, time.Second)
		})
	}
}

// BenchmarkFig3FullWorkflow exercises the complete ExCovery workflow of
// Fig. 3 per iteration: description → plan → runs → level-2 store →
// conditioning → level-3 database.
func BenchmarkFig3FullWorkflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := desc.OneShot(30)
		e.Repl.Count = 3
		dir := b.TempDir()
		x, err := core.New(e, core.Options{StoreDir: dir, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := x.Run()
		if err != nil || rep.Completed != 3 {
			b.Fatalf("run: %v, completed=%d", err, rep.Completed)
		}
		db, err := x.Finalize()
		if err != nil {
			b.Fatal(err)
		}
		if n, _ := db.DB.Count("Events"); n == 0 {
			b.Fatal("empty Events table")
		}
	}
}

// BenchmarkFig5TreatmentPlan expands the Fig. 5 factor list (6 treatments
// × 1000 replications) into the 6000-run plan.
func BenchmarkFig5TreatmentPlan(b *testing.B) {
	e := desc.CaseStudy(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := desc.GeneratePlan(e)
		if err != nil || len(plan.Runs) != 6000 {
			b.Fatalf("plan: %v, runs=%d", err, len(plan.Runs))
		}
	}
}

// BenchmarkFig7TrafficGenerator measures the Fig. 7 traffic process: 10
// virtual seconds of background load between environment node pairs.
func BenchmarkFig7TrafficGenerator(b *testing.B) {
	packets := 0.0
	for i := 0; i < b.N; i++ {
		s := sched.NewVirtual()
		nw := netem.New(s, int64(i+1))
		ids := netem.BuildFull(nw, "e", 6, netem.NodeParams{}, netem.DefaultLink())
		for _, id := range ids {
			nw.Node(id).SetHandler(func(p *netem.Packet) {})
		}
		env := core.NewEnvExec(s, nw, nil, idsToStrings(ids), nil)
		s.Go("traffic", func() {
			if err := env.Execute("env_traffic_start", map[string]string{
				"bw": "100", "random_pairs": "5", "random_seed": fmt.Sprint(i),
			}); err != nil {
				b.Error(err)
			}
			s.Sleep(10 * time.Second)
			env.Execute("env_traffic_stop", nil)
		})
		if err := s.RunFor(time.Minute); err != nil {
			b.Fatal(err)
		}
		packets += float64(nw.Stats().Sent)
	}
	b.ReportMetric(packets/float64(b.N), "pkts/10s")
}

// BenchmarkFig9And10TwoPartySD executes the composed SM and SU processes
// of Figs. 9/10 (one case-study run with background load).
func BenchmarkFig9And10TwoPartySD(b *testing.B) {
	var all []metrics.RunMetric
	for i := 0; i < b.N; i++ {
		e := desc.CaseStudy(1)
		// One treatment only: fix the sweep factors.
		e.Factors[1] = desc.IntFactor("fact_pairs", desc.UsageConstant, 5)
		e.Factors[2] = desc.IntFactor("fact_bw", desc.UsageConstant, 50)
		all = append(all, runExperiment(b, e, core.Options{Seed: int64(i + 1)})...)
	}
	reportDiscovery(b, all, time.Second)
}

// BenchmarkFig12RPCControlPlane drives one run through the distributed
// XML-RPC deployment (master process model) over HTTP loopback.
func BenchmarkFig12RPCControlPlane(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runDistributedOneShot(b, int64(i+1))
	}
}

func runDistributedOneShot(b *testing.B, seed int64) {
	b.Helper()
	e := desc.OneShot(30)
	var host *noderpc.Host
	x, err := core.New(e, core.Options{
		RealTime: true, Speed: 0.0005, Seed: seed,
		OnEvent: func(ev eventlog.Event) { host.ForwardEvent(ev) },
	})
	if err != nil {
		b.Fatal(err)
	}
	host = noderpc.NewHost(x)
	defer host.Close()
	x.S.SetKeepAlive(true)
	hostHTTP := httptest.NewServer(host.Server())
	defer hostHTTP.Close()
	done := make(chan error, 1)
	go func() { done <- x.S.Run() }()

	ms := sched.New(sched.RealTime, time.Unix(0, 0))
	ms.SetSpeed(0.0005)
	bus := eventlog.NewBus(ms)
	masterHTTP := httptest.NewServer(noderpc.MasterServer(ms, bus))
	defer masterHTTP.Close()
	hc := xmlrpc.NewClient(hostHTTP.URL)
	if _, err := hc.Call("host.set_master", masterHTTP.URL); err != nil {
		b.Fatal(err)
	}
	handles := map[string]master.NodeHandle{
		"A": &noderpc.RemoteNode{NodeID: "A", C: xmlrpc.NewClient(hostHTTP.URL)},
		"B": &noderpc.RemoteNode{NodeID: "B", C: xmlrpc.NewClient(hostHTTP.URL)},
	}
	m, err := master.New(master.Config{Exp: e, S: ms, Bus: bus, Nodes: handles,
		Env: &noderpc.RemoteEnv{C: xmlrpc.NewClient(hostHTTP.URL)}})
	if err != nil {
		b.Fatal(err)
	}
	var rep *master.Report
	ms.Go("experimaster", func() { rep, _ = m.RunAll() })
	if err := ms.Run(); err != nil {
		b.Fatal(err)
	}
	if rep == nil || rep.Completed != 1 {
		b.Fatalf("distributed run incomplete: %+v", rep)
	}
	x.S.Stop()
	<-done
}

// latencyNode is a goroutine-safe NodeHandle stub whose control-channel
// operations stall on an injected RPC latency (failpoint registry),
// modeling a remote node behind a real network. Execute is deliberately
// latency-free: it runs inside the execution phase, which is not a
// broadcast site.
type latencyNode struct {
	id string
	fp *failpoint.Registry
}

func (n *latencyNode) rpc() {
	if d := n.fp.Eval(failpoint.SiteClientSend); d.Act == failpoint.Delay {
		time.Sleep(d.Delay)
	}
}

func (n *latencyNode) ID() string     { return n.id }
func (n *latencyNode) PrepareRun(int) { n.rpc() }
func (n *latencyNode) CleanupRun(int) { n.rpc() }
func (n *latencyNode) LocalTime() time.Time {
	n.rpc()
	return time.Unix(0, 0)
}
func (n *latencyNode) Execute(string, map[string]string) error { return nil }
func (n *latencyNode) Emit(string, map[string]string)          {}
func (n *latencyNode) HarvestEvents(int) []eventlog.Event {
	n.rpc()
	return nil
}
func (n *latencyNode) HarvestPackets() []store.PacketRecord {
	n.rpc()
	return nil
}
func (n *latencyNode) HarvestExtras() []store.ExtraMeasurement {
	n.rpc()
	return nil
}

// fanoutExp is a minimal one-run description whose single actor spans all
// given nodes, so every broadcast phase touches every node.
func fanoutExp(nodes []string) *desc.Experiment {
	e := &desc.Experiment{
		Name:          "fanout-bench",
		AbstractNodes: nodes,
		Factors: []desc.Factor{
			desc.ActorMapFactor("fact_nodes", desc.UsageBlocking,
				map[string][]string{"actor0": nodes}),
		},
		Repl: desc.Replication{ID: "rep", Count: 1},
		Seed: 1,
	}
	e.NodeProcesses = []desc.NodeProcess{{
		Actor: "actor0", Name: "SM", NodesRef: "fact_nodes",
		Actions: []desc.Action{desc.Act("sd_init"), desc.Act("sd_exit")},
	}}
	return e
}

// runFanoutExperiment drives one stored run over n latency-injected node
// handles with the given fan-out bound.
func runFanoutExperiment(b *testing.B, n, fanout int, lat time.Duration) {
	b.Helper()
	fp := failpoint.New(1)
	fp.Enable(failpoint.SiteClientSend, failpoint.Rule{
		Prob: 1, Act: failpoint.Delay, Delay: lat})
	s := sched.New(sched.RealTime, time.Unix(0, 0))
	s.SetSpeed(0.0005)
	bus := eventlog.NewBus(s)
	handles := map[string]master.NodeHandle{}
	names := make([]string, n)
	for i := range names {
		id := fmt.Sprintf("N%d", i)
		names[i] = id
		handles[id] = &latencyNode{id: id, fp: fp}
	}
	st, err := store.NewRunStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	m, err := master.New(master.Config{
		Exp: fanoutExp(names), S: s, Bus: bus, Nodes: handles,
		Fanout: fanout, Store: st,
	})
	if err != nil {
		b.Fatal(err)
	}
	var rep *master.Report
	s.Go("experimaster", func() { rep, _ = m.RunAll() })
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	if rep == nil || rep.Completed != 1 {
		b.Fatalf("fan-out run incomplete: %+v", rep)
	}
}

// BenchmarkControlFanout measures the master's per-run control-plane wall
// time over 8 nodes with 5 ms injected RPC latency: the sequential
// baseline pays every RPC serially (prepare + 3-sample timesync + cleanup
// + 3-way harvest ≈ 64 round trips), the fan-out path pays the slowest
// node per phase. The ratio demonstrates the near-linear speedup of the
// parallel control plane.
func BenchmarkControlFanout(b *testing.B) {
	const nodes = 8
	const rpcLatency = 5 * time.Millisecond
	for _, fo := range []int{1, nodes} {
		name := "sequential"
		if fo > 1 {
			name = fmt.Sprintf("fanout=%d", fo)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runFanoutExperiment(b, nodes, fo, rpcLatency)
			}
		})
	}
}

// BenchmarkTableIStorageIngest measures conditioning + ingest of a
// multi-run experiment into the Table I schema and its single-file
// round trip.
func BenchmarkTableIStorageIngest(b *testing.B) {
	// Prepare one level-2 store, reused across iterations.
	dir := b.TempDir()
	e := desc.OneShot(30)
	e.Repl.Count = 10
	x, err := core.New(e, core.Options{StoreDir: dir})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := x.Run(); err != nil {
		b.Fatal(err)
	}
	xml, _ := desc.EncodeString(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := store.Condition(x.Store(), store.Meta{ExpXML: xml, Name: e.Name})
		if err != nil {
			b.Fatal(err)
		}
		path := dir + "/bench.xcdb"
		if err := db.Save(path); err != nil {
			b.Fatal(err)
		}
		if _, err := store.OpenExperimentDB(path); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpACaseStudySweep reproduces the case-study factorial sweep:
// sub-benchmarks report the t_R / responsiveness series per treatment,
// i.e. the table the paper's evaluation would print.
func BenchmarkExpACaseStudySweep(b *testing.B) {
	for _, pairs := range []int{5, 20} {
		for _, bw := range []int{10, 50, 100} {
			name := fmt.Sprintf("pairs=%d/bw=%d", pairs, bw)
			b.Run(name, func(b *testing.B) {
				var all []metrics.RunMetric
				for i := 0; i < b.N; i++ {
					e := desc.CaseStudy(2)
					e.Factors[1] = desc.IntFactor("fact_pairs", desc.UsageConstant, pairs)
					e.Factors[2] = desc.IntFactor("fact_bw", desc.UsageConstant, bw)
					all = append(all, runExperiment(b, e, core.Options{
						Seed: int64(i + 1),
						Node: netem.NodeParams{RateBps: 1_500_000},
					})...)
				}
				reportDiscovery(b, all, time.Second)
			})
		}
	}
}

// BenchmarkExpBResponsivenessVsLoss sweeps injected message loss on the
// SM ([25]-shaped series).
func BenchmarkExpBResponsivenessVsLoss(b *testing.B) {
	for _, loss := range []float64{0, 0.2, 0.4} {
		b.Run(fmt.Sprintf("loss=%.1f", loss), func(b *testing.B) {
			var all []metrics.RunMetric
			for i := 0; i < b.N; i++ {
				e := lossSweepExperiment(loss, 2)
				all = append(all, runExperiment(b, e, core.Options{Seed: int64(i + 1)})...)
			}
			reportDiscovery(b, all, 2*time.Second)
		})
	}
}

// lossSweepExperiment builds a one-treatment loss-injection experiment
// (the examples/faultinjection scenario at a single level).
func lossSweepExperiment(loss float64, reps int) *desc.Experiment {
	e := desc.OneShot(15)
	e.Name = "sd-loss-bench"
	e.Repl.Count = reps
	e.Factors = append(e.Factors, desc.FloatFactor("fact_loss", desc.UsageConstant, loss))
	e.ManipProcesses = []desc.ManipulationProcess{{
		Actor: "actor0", NodesRef: "fact_nodes",
		Actions: []desc.Action{
			desc.Act("fault_msg_loss", "direction", "both", "proto", "sd").
				WithFactorRef("prob", "fact_loss"),
			desc.Flag("fault_armed"),
			desc.WaitEvent(desc.WaitSpec{Event: "done"}),
			desc.Act("fault_stop", "kind", "fault_msg_loss"),
		},
	}}
	sm := &e.NodeProcesses[0]
	sm.Actions = append([]desc.Action{
		desc.WaitEvent(desc.WaitSpec{Event: "fault_armed"}),
	}, sm.Actions...)
	return e
}

// BenchmarkExpCResponsivenessVsHops sweeps the SU↔SM distance in a chain
// topology ([26]-shaped series: responsiveness falls with hop count).
func BenchmarkExpCResponsivenessVsHops(b *testing.B) {
	for _, hops := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("hops=%d", hops), func(b *testing.B) {
			var all []metrics.RunMetric
			for i := 0; i < b.N; i++ {
				e := desc.OneShot(30)
				nodes := []string{"A"}
				for r := 0; r < hops-1; r++ {
					nodes = append(nodes, fmt.Sprintf("r%d", r))
				}
				nodes = append(nodes, "B")
				e.AbstractNodes = nodes
				all = append(all, runExperiment(b, e, core.Options{
					Topology: core.TopoChain,
					Seed:     int64(i + 1),
					Link:     netem.LinkParams{Delay: time.Millisecond, Jitter: time.Millisecond, Loss: 0.05},
				})...)
			}
			reportDiscovery(b, all, time.Second)
		})
	}
}

// BenchmarkExpDArchitectureUnderLoad compares the two architectures at
// idle and under background load (the crossover experiment).
func BenchmarkExpDArchitectureUnderLoad(b *testing.B) {
	for _, arch := range []string{"two-party", "three-party"} {
		for _, load := range []int{0, 400} {
			b.Run(fmt.Sprintf("%s/load=%d", arch, load), func(b *testing.B) {
				var all []metrics.RunMetric
				for i := 0; i < b.N; i++ {
					e := archExperiment(arch, load, 2)
					all = append(all, runExperiment(b, e, core.Options{
						Seed: int64(i + 1),
						Node: netem.NodeParams{RateBps: 1_000_000},
					})...)
				}
				reportDiscovery(b, all, 2*time.Second)
			})
		}
	}
}

func archExperiment(arch string, loadKbps, reps int) *desc.Experiment {
	var e *desc.Experiment
	if arch == "two-party" {
		e = desc.CaseStudy(reps)
	} else {
		e = desc.ThreeParty(30, reps)
		e.EnvironmentNodes = []string{"E0", "E1", "E2", "E3"}
		e.EnvProcesses = desc.CaseStudy(1).EnvProcesses
	}
	for i := range e.Factors {
		switch e.Factors[i].ID {
		case "fact_pairs":
			e.Factors[i] = desc.IntFactor("fact_pairs", desc.UsageConstant, 4)
		case "fact_bw":
			e.Factors[i] = desc.IntFactor("fact_bw", desc.UsageConstant, maxInt(loadKbps, 1))
		}
	}
	if e.Factor("fact_pairs") == nil {
		e.Factors = append(e.Factors,
			desc.IntFactor("fact_pairs", desc.UsageConstant, 4),
			desc.IntFactor("fact_bw", desc.UsageConstant, maxInt(loadKbps, 1)))
	}
	if loadKbps == 0 {
		e.EnvProcesses = nil
		for pi := range e.NodeProcesses {
			var kept []desc.Action
			for _, a := range e.NodeProcesses[pi].Actions {
				if a.Wait != nil && a.Wait.Event == "ready_to_init" {
					continue
				}
				kept = append(kept, a)
			}
			e.NodeProcesses[pi].Actions = kept
		}
	}
	return e
}

// BenchmarkAblationSimVsReal contrasts virtual-time execution with
// real-time pacing (DESIGN.md §5): the virtual mode finishes a 5+ virtual
// second experiment in milliseconds.
func BenchmarkAblationSimVsReal(b *testing.B) {
	b.Run("virtual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runExperiment(b, desc.OneShot(30), core.Options{Seed: int64(i + 1)})
		}
	})
	b.Run("realtime-200x", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runExperiment(b, desc.OneShot(30), core.Options{
				Seed: int64(i + 1), RealTime: true, Speed: 0.005,
			})
		}
	})
}

// BenchmarkAblationContention isolates the shared-medium model: with
// contention off, background load no longer inflates t_R.
func BenchmarkAblationContention(b *testing.B) {
	for _, contention := range []bool{true, false} {
		b.Run(fmt.Sprintf("contention=%v", contention), func(b *testing.B) {
			var all []metrics.RunMetric
			for i := 0; i < b.N; i++ {
				e := desc.CaseStudy(2)
				e.Factors[1] = desc.IntFactor("fact_pairs", desc.UsageConstant, 20)
				e.Factors[2] = desc.IntFactor("fact_bw", desc.UsageConstant, 100)
				x, err := core.New(e, core.Options{
					Seed: int64(i + 1),
					Node: netem.NodeParams{RateBps: 1_500_000},
				})
				if err != nil {
					b.Fatal(err)
				}
				x.Net.Contention = contention
				rep, err := x.Run()
				if err != nil {
					b.Fatal(err)
				}
				all = append(all, metrics.FromReport(e, rep, "", "")...)
			}
			reportDiscovery(b, all, time.Second)
		})
	}
}

// BenchmarkAblationTimeSync quantifies conditioning: without the time-sync
// correction, skewed node clocks produce causality violations. The checked
// causal pair is tight: the SU's "done" flag triggers the SM's
// sd_stop_publish about a millisecond later, so ±2 s node skew inverts the
// raw order with high probability. Each op samples eight seeds;
// conditioning must remove every violation.
func BenchmarkAblationTimeSync(b *testing.B) {
	const seedsPerOp = 8
	violations := func(b *testing.B, correct bool) float64 {
		count := 0.0
		for i := 0; i < b.N; i++ {
			for s := 0; s < seedsPerOp; s++ {
				e := desc.OneShot(30)
				dir := b.TempDir()
				opts := core.Options{StoreDir: dir, Seed: int64(i*seedsPerOp + s + 1)}
				opts.ClockSkew.MaxOffset = 2 * time.Second
				x, err := core.New(e, opts)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := x.Run()
				if err != nil {
					b.Fatal(err)
				}
				var cause, effect time.Time
				scan := func(evs []eventlog.Event) {
					for _, ev := range evs {
						switch {
						case ev.Type == "done" && ev.Node == "B":
							cause = ev.Time
						case ev.Type == "sd_stop_publish" && ev.Node == "A":
							effect = ev.Time
						}
					}
				}
				if correct {
					db, err := x.Finalize()
					if err != nil {
						b.Fatal(err)
					}
					evs, _ := db.EventsOfRun(0)
					scan(evs)
				} else {
					scan(rep.Results[0].Events)
				}
				if !cause.IsZero() && !effect.IsZero() && effect.Before(cause) {
					count++
				}
			}
		}
		return count
	}
	b.Run("uncorrected", func(b *testing.B) {
		v := violations(b, false)
		if v == 0 {
			b.Fatal("expected causality violations on raw skewed timestamps")
		}
		b.ReportMetric(v/float64(b.N), "violations/op")
	})
	b.Run("conditioned", func(b *testing.B) {
		v := violations(b, true)
		if v > 0 {
			b.Fatalf("conditioning left %v causality violations", v)
		}
		b.ReportMetric(0, "violations/op")
	})
}

// BenchmarkReldbInsert measures raw row ingest into the Events schema.
func BenchmarkReldbInsert(b *testing.B) {
	db := reldb.New()
	db.CreateTable(reldb.Schema{Name: "Events", Columns: []reldb.Column{
		{Name: "RunID", Type: reldb.Int64},
		{Name: "NodeID", Type: reldb.Text},
		{Name: "CommonTime", Type: reldb.Time},
		{Name: "EventType", Type: reldb.Text},
		{Name: "Parameter", Type: reldb.Text},
	}})
	t0 := time.Unix(0, 0).UTC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Insert("Events", reldb.Row{
			int64(i % 100), "node", t0.Add(time.Duration(i)), "ev", "",
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReldbSelect contrasts full scans with hash-indexed equality
// lookups (DESIGN.md §5 storage ablation).
func BenchmarkReldbSelect(b *testing.B) {
	mk := func(indexed bool) *reldb.DB {
		db := reldb.New()
		db.CreateTable(reldb.Schema{Name: "T", Columns: []reldb.Column{
			{Name: "RunID", Type: reldb.Int64}, {Name: "V", Type: reldb.Text},
		}})
		for i := 0; i < 20000; i++ {
			db.Insert("T", reldb.Row{int64(i % 500), "v"})
		}
		if indexed {
			db.CreateIndex("T", "RunID")
		}
		return db
	}
	for _, indexed := range []bool{false, true} {
		b.Run(fmt.Sprintf("indexed=%v", indexed), func(b *testing.B) {
			db := mk(indexed)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := db.Select(reldb.Query{Table: "T",
					Where: []reldb.Pred{reldb.Eq("RunID", int64(i%500))}})
				if err != nil || len(rows) != 40 {
					b.Fatalf("rows=%d err=%v", len(rows), err)
				}
			}
		})
	}
}

func idsToStrings(ids []netem.NodeID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestBenchHelpersCompile keeps the benchmark-only helpers under vet/test
// coverage even when benchmarks are not executed.
func TestBenchHelpersCompile(t *testing.T) {
	if maxInt(2, 1) != 2 || maxInt(1, 2) != 2 {
		t.Fatal("maxInt")
	}
	e := archExperiment("three-party", 0, 1)
	if err := desc.Validate(e); err != nil {
		t.Fatal(err)
	}
	e2 := lossSweepExperiment(0.5, 1)
	if err := desc.Validate(e2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(e.Name, " ") {
		t.Fatal("unexpected name")
	}
}

// buildScalingMesh constructs the sharded emulator workload for the
// GOMAXPROCS scaling benchmark: `shards` schedulers under one group, each
// owning a chorded 8-node ring, joined into one mesh by a cross-shard ring
// whose link delays equal the lookahead.
func buildScalingMesh(shards int) (*sched.Group, *netem.Network) {
	const lookahead = 5 * time.Millisecond
	members := make([]*sched.Scheduler, shards)
	for i := range members {
		members[i] = sched.NewVirtual()
	}
	g := sched.NewGroup(lookahead, members...)
	nw := netem.NewSharded(g, 99, func(id netem.NodeID) int {
		return int(id[1]-'0')*10 + int(id[2]-'0')
	})
	name := func(k, i int) netem.NodeID { return netem.NodeID(fmt.Sprintf("s%02dn%d", k, i)) }
	for k := 0; k < shards; k++ {
		for i := 0; i < 8; i++ {
			nw.AddNode(name(k, i), netem.NodeParams{})
		}
		for i := 0; i < 8; i++ {
			nw.AddLink(name(k, i), name(k, (i+1)%8),
				netem.LinkParams{Delay: time.Millisecond, Jitter: 200 * time.Microsecond, Loss: 0.01})
		}
		nw.AddLink(name(k, 0), name(k, 4), netem.LinkParams{Delay: time.Millisecond})
	}
	for k := 0; k < shards; k++ {
		nw.AddLink(name(k, 0), name((k+1)%shards, 0), netem.LinkParams{Delay: lookahead})
	}
	return g, nw
}

// BenchmarkEmulatorShardScaling measures the sharded emulator data path at
// GOMAXPROCS 1/2/4/8: eight shards exchange mostly shard-local traffic
// plus a cross-shard trickle, so wall-clock time should fall near-linearly
// with cores while the virtual-time result stays byte-identical (see
// TestShardedDeterministicAcrossGOMAXPROCS).
func BenchmarkEmulatorShardScaling(b *testing.B) {
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			const shards = 8
			g, nw := buildScalingMesh(shards)
			members := g.Members()
			payload := make([]byte, 200)
			b.ReportAllocs()
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				for k := 0; k < shards; k++ {
					m := members[k]
					for i := 0; i < 8; i++ {
						src := nw.Node(netem.NodeID(fmt.Sprintf("s%02dn%d", k, i)))
						dst := netem.NodeID(fmt.Sprintf("s%02dn%d", k, (i+3)%8))
						for r := 0; r < 40; r++ {
							at := time.Duration(r)*time.Millisecond + time.Duration(i)*125*time.Microsecond
							m.ScheduleEvent(at, func(time.Time, any) {
								src.Send(netem.Unicast(dst), "traffic", payload)
							}, nil)
						}
					}
					src := nw.Node(netem.NodeID(fmt.Sprintf("s%02dn0", k)))
					xdst := netem.NodeID(fmt.Sprintf("s%02dn4", (k+1)%shards))
					m.ScheduleEvent(2*time.Millisecond, func(time.Time, any) {
						src.Send(netem.Unicast(xdst), "traffic", payload)
					}, nil)
				}
				if err := g.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := nw.Stats()
			b.ReportMetric(float64(st.Delivered)/float64(b.N), "deliveries/op")
		})
	}
}

// BenchmarkEmulatorDeliverySteadyState gates the pooled data path: after
// pool warm-up, a handler-driven unicast ping-pong (every delivery Sends
// the next packet — no tasks, no closures, no capture) must not allocate.
// bench-thresholds.json pins allocs/op and B/op to zero growth.
func BenchmarkEmulatorDeliverySteadyState(b *testing.B) {
	s := sched.NewVirtual()
	nw := netem.New(s, 7)
	a := nw.AddNode("a", netem.NodeParams{})
	c := nw.AddNode("b", netem.NodeParams{})
	nw.AddLink("a", "b", netem.LinkParams{Delay: 500 * time.Microsecond, Jitter: 100 * time.Microsecond})
	payload := make([]byte, 120)
	remaining := 0
	a.SetHandler(func(p *netem.Packet) {
		if remaining > 0 {
			remaining--
			a.Send(netem.Unicast("b"), "traffic", payload)
		}
	})
	c.SetHandler(func(p *netem.Packet) {
		if remaining > 0 {
			remaining--
			c.Send(netem.Unicast("a"), "traffic", payload)
		}
	})
	warm := func(n int) {
		remaining = n
		s.Go("kick", func() { a.Send(netem.Unicast("b"), "traffic", payload) })
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	warm(512) // warm the packet pool, timer pool, rings and routes
	b.ReportAllocs()
	b.ResetTimer()
	warm(b.N)
}

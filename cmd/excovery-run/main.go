// Command excovery-run executes an experiment description end to end on
// the emulated platform: it generates the treatment plan, runs every run
// (preparation → execution → clean-up), records events and packets into
// the level-2 store, conditions them into a level-3 database and prints a
// summary with discovery metrics.
//
// Usage:
//
//	excovery-run -builtin oneshot
//	excovery-run -store /tmp/exp1 -db /tmp/exp1.xcdb description.xml
//	excovery-run -builtin casestudy -reps 50 -topo grid -gridwidth 3
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"excovery/internal/core"
	"excovery/internal/desc"
	"excovery/internal/failpoint"
	"excovery/internal/master"
	"excovery/internal/metrics"
	"excovery/internal/netem"
)

func main() {
	var (
		builtin   = flag.String("builtin", "", "run a built-in description: casestudy, oneshot, threeparty")
		reps      = flag.Int("reps", 0, "override the replication count")
		storeDir  = flag.String("store", "", "level-2 storage directory (default: none)")
		dbPath    = flag.String("db", "", "write the level-3 database to this file")
		topo      = flag.String("topo", "full", "topology: full, chain, grid, geometric")
		gridWidth = flag.Int("gridwidth", 0, "grid width for -topo grid")
		loss      = flag.Float64("loss", 0.01, "per-link loss probability")
		delayMs   = flag.Float64("delay", 1.0, "per-link delay in ms")
		proto     = flag.String("proto", "", "override sd_protocol: zeroconf or scmdir")
		seed      = flag.Int64("seed", 0, "override the experiment seed")
		resume    = flag.Bool("resume", false, "skip runs already marked done in -store")
		journal   = flag.Bool("journal", true, "write-ahead run journal in -store: crashed runs are detected and re-executed on -resume (requires -store; ignored without one)")
		maxAtt    = flag.Int("max-attempts", 1, "run-level retry: attempts per run before it is recorded failed")
		probation = flag.Int("probation", 0, "re-admit a quarantined node after this many consecutive healthy probes (0: quarantine is permanent)")
		crashAt   = flag.Int("crash-after", 0, "crash the process (exit 3) at the Nth run attempt, after its journal record — durability testing (0 disables)")
		allowFail = flag.Bool("allow-failed", false, "exit zero even when runs failed or aborted")
		verbose   = flag.Bool("v", false, "print per-run results")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: excovery-run [flags] [description.xml]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	e, err := loadDescription(*builtin, flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *reps > 0 {
		e.Repl.Count = *reps
	}

	opts := core.Options{
		Topology:  core.TopologyKind(*topo),
		GridWidth: *gridWidth,
		Link: netem.LinkParams{
			Delay:  time.Duration(*delayMs * float64(time.Millisecond)),
			Jitter: time.Duration(*delayMs * 0.5 * float64(time.Millisecond)),
			Loss:   *loss,
		},
		Protocol:        *proto,
		Seed:            *seed,
		StoreDir:        *storeDir,
		Resume:          *resume,
		Journal:         *journal && *storeDir != "",
		MaxAttempts:     *maxAtt,
		ProbationProbes: *probation,
	}
	if *crashAt > 0 {
		fp := failpoint.New(1)
		fp.Enable(failpoint.SiteMasterAttempt, failpoint.Rule{
			Prob: 1, Act: failpoint.Crash, Skip: *crashAt - 1, Count: 1})
		opts.Failpoints = fp
		opts.CrashFn = func() {
			fmt.Fprintln(os.Stderr, "excovery-run: crash failpoint fired, exiting hard")
			os.Exit(3)
		}
	}
	if *verbose {
		opts.OnRunDone = func(run desc.Run, rr master.RunResult) {
			status := "ok"
			if rr.Err != nil {
				status = "error: " + rr.Err.Error()
			} else if rr.Aborted {
				status = "aborted"
			} else if rr.Timeouts > 0 {
				status = fmt.Sprintf("%d wait timeout(s)", rr.Timeouts)
			}
			fmt.Printf("run %4d  treatment %3d rep %4d  %8s  %s\n",
				run.ID, run.TreatmentIndex, run.Replication, rr.Duration.Round(time.Millisecond), status)
		}
	}

	x, err := core.New(e, opts)
	if err != nil {
		fatal(err)
	}
	defer x.Close()
	//lint:ignore walltime operator-facing wall duration in the CLI report, not experiment data
	wall := time.Now()
	rep, err := x.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("experiment %q: %d runs (%d completed, %d skipped, %d failed) in %s wall time\n",
		e.Name, len(rep.Results), rep.Completed, rep.Skipped, rep.Failed,
		time.Since(wall).Round(time.Millisecond))
	if cs := metrics.ControlSummary(rep); cs.Retried > 0 || cs.Partial > 0 || cs.Recovered > 0 {
		fmt.Printf("recovery: %d attempts for %d runs, %d retried, %d partial harvests, %d crashed runs re-executed\n",
			cs.Attempts, cs.Runs, cs.Retried, cs.Partial, cs.Recovered)
	}
	if len(rep.Readmitted) > 0 || len(rep.Quarantined) > 0 {
		fmt.Printf("nodes: readmitted=%v quarantined=%v\n", rep.Readmitted, rep.Quarantined)
	}

	ms := metrics.FromReport(e, rep, "", "")
	if len(ms) > 0 {
		trs := metrics.TRs(ms)
		fmt.Printf("discovery: %d/%d runs complete, responsiveness(1s)=%.3f responsiveness(5s)=%.3f\n",
			len(trs), len(ms),
			metrics.Responsiveness(ms, time.Second),
			metrics.Responsiveness(ms, 5*time.Second))
		if len(trs) > 0 {
			s := metrics.Summarize(metrics.DurationsToSeconds(trs))
			fmt.Printf("t_R: mean=%.4fs p50=%.4fs p90=%.4fs p99=%.4fs max=%.4fs\n",
				s.Mean, s.P50, s.P90, s.P99, s.Max)
		}
	}
	st := x.Net.Stats()
	fmt.Printf("network: %d packets sent, %d transmissions, %d delivered, %d dropped (%d loss, %d queue)\n",
		st.Sent, st.Transmissions, st.Delivered, st.DroppedTotal(),
		st.Dropped[netem.DropLoss], st.Dropped[netem.DropQueue])

	if *dbPath != "" {
		if *storeDir == "" {
			fatal(fmt.Errorf("-db requires -store"))
		}
		db, err := x.Finalize()
		if err != nil {
			fatal(err)
		}
		if err := db.Save(*dbPath); err != nil {
			fatal(err)
		}
		nEv, _ := db.DB.Count("Events")
		nPk, _ := db.DB.Count("Packets")
		fmt.Printf("level-3 database: %s (%d events, %d packets)\n", *dbPath, nEv, nPk)
	}

	// Exit status tells CI and shell scripts whether the data is complete:
	// any failed or aborted run means the level-3 database is missing
	// measurements, which must not pass silently.
	if !*allowFail {
		aborted := 0
		for _, rr := range rep.Results {
			if rr.Aborted {
				aborted++
			}
		}
		if rep.Failed > 0 || aborted > 0 {
			fmt.Fprintf(os.Stderr, "error: %d runs failed (%d aborted); pass -allow-failed to exit zero anyway\n",
				rep.Failed, aborted)
			os.Exit(1)
		}
	}
}

func loadDescription(builtin, path string) (*desc.Experiment, error) {
	switch builtin {
	case "casestudy":
		return desc.CaseStudy(1000), nil
	case "oneshot":
		return desc.OneShot(30), nil
	case "threeparty":
		return desc.ThreeParty(30, 100), nil
	case "":
	default:
		return nil, fmt.Errorf("unknown builtin %q", builtin)
	}
	if path == "" {
		return nil, fmt.Errorf("need a description file or -builtin")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return desc.Parse(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

// Command excovery-master is the controlling half of the distributed
// deployment (Fig. 12): it connects to an excovery-node host over XML-RPC,
// registers its own event endpoint, generates the treatment plan and
// executes the experiment remotely — every process action becomes a
// synchronous RPC, like the prototype's xmlrpclib-based ExperiMaster.
//
// Usage (with an excovery-node running on :8800):
//
//	excovery-master -host http://127.0.0.1:8800 -listen :8801 -builtin oneshot
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"excovery/internal/desc"
	"excovery/internal/discovery"
	"excovery/internal/eventlog"
	"excovery/internal/failpoint"
	"excovery/internal/master"
	"excovery/internal/metrics"
	"excovery/internal/noderpc"
	"excovery/internal/obs"
	"excovery/internal/sched"
	"excovery/internal/store"
	"excovery/internal/xmlrpc"
)

func main() {
	var (
		hostURL    = flag.String("host", "http://127.0.0.1:8800", "node host XML-RPC endpoint (static wiring; ignored with -registry)")
		registry   = flag.String("registry", "", "discovery registry XML-RPC endpoint: claim node hosts from the registry instead of -host, and replace dead hosts mid-campaign")
		region     = flag.String("region", "", "preferred placement region when claiming hosts from -registry")
		listen     = flag.String("listen", ":8801", "this master's event endpoint listen address")
		builtin    = flag.String("builtin", "", "built-in description: casestudy, oneshot, threeparty")
		reps       = flag.Int("reps", 0, "override the replication count")
		speed      = flag.Float64("speed", 0.01, "real-time pacing factor")
		storeDir   = flag.String("store", "", "level-2 storage directory")
		dbPath     = flag.String("db", "", "write the level-3 database here (requires -store)")
		resume     = flag.Bool("resume", false, "skip runs already marked done in -store; with -journal, crashed runs are discarded and re-executed")
		journal    = flag.Bool("journal", true, "write-ahead run journal in -store (requires -store; ignored without one)")
		maxAtt     = flag.Int("max-attempts", 1, "run-level retry: attempts per run before it is recorded failed")
		quarantine = flag.Int("quarantine-after", 3, "quarantine a node after this many consecutive control-channel failures (0 disables)")
		probation  = flag.Int("probation", 0, "re-admit a quarantined node after this many consecutive healthy probes (0: quarantine is permanent)")
		leaseTTL   = flag.Duration("lease-ttl", 15*time.Second, "session lease granted to the node host, renewed from a heartbeat; 0 registers without a lease")
		crashAt    = flag.Int("crash-after", 0, "crash the process (exit 3) at the Nth run attempt, after its journal record — durability testing (0 disables)")
		allowFail  = flag.Bool("allow-failed", false, "exit zero even when runs failed or aborted")
		rpcRetries = flag.Int("rpc-retries", 4, "control-channel RPC attempts per call")
		rpcTimeout = flag.Duration("rpc-timeout", 30*time.Second, "control-channel per-attempt timeout")
		rpcSeed    = flag.Int64("rpc-seed", 1, "seed of the retry-backoff jitter PRNG (replayable schedules)")
		fanout     = flag.Int("fanout", 0, "concurrent per-node control-channel operations during the broadcast phases (0: number of nodes, 1: sequential)")
		obsAddr    = flag.String("obs-addr", "", "serve /metrics, /healthz, /status and pprof on this address (empty disables)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: excovery-master [flags] [description.xml]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	e, err := loadDescription(*builtin, flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *reps > 0 {
		e.Repl.Count = *reps
	}

	s := sched.New(sched.RealTime, time.Unix(0, 0))
	s.SetSpeed(*speed)
	bus := eventlog.NewBus(s)

	// Observability: metrics registry, live status and execution tracer.
	// All are active regardless of -obs-addr (the tracer feeds the per-run
	// trace.json artifact); the flag only controls the HTTP listener.
	reg := obs.NewRegistry()
	status := obs.NewStatus(nil)
	tracer := obs.NewTracer(s.Now)
	bus.Instrument(reg)
	if *obsAddr != "" {
		osrv, err := obs.Serve(*obsAddr, reg, func() any { return status.Snapshot() })
		if err != nil {
			fatal(err)
		}
		defer osrv.Close()
		fmt.Printf("excovery-master: observability endpoints at http://%s\n", osrv.Addr())
	}

	// Event endpoint for node pushes.
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	go http.Serve(ln, noderpc.MasterServer(s, bus))
	selfURL := "http://" + ln.Addr().String()

	rpcPolicy := xmlrpc.RetryPolicy{
		MaxAttempts: *rpcRetries,
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  2 * time.Second,
		Timeout:     *rpcTimeout,
		Seed:        *rpcSeed,
	}
	dial := func(url string) *xmlrpc.Client {
		c := xmlrpc.NewRetryingClient(url, rpcPolicy)
		c.Obs = reg
		return c
	}
	newClient := func() *xmlrpc.Client { return dial(*hostURL) }
	var handles map[string]master.NodeHandle
	var env master.EnvExecutor
	var fleetMgr master.FleetManager
	if *registry != "" {
		// Registry wiring (DESIGN.md §14): claim node hosts from the
		// discovery registry under a fencing epoch. The first claim backs
		// the campaign, the rest stay warm spares; when the active host
		// dies mid-campaign, the fleet re-places the run's nodes on a
		// survivor (or a host that joined since) and the run replays from
		// its derived seed.
		fleet := &discovery.Fleet{
			Reg:       dial(*registry),
			MasterID:  noderpc.NewSessionID(),
			MasterURL: selfURL,
			Region:    *region,
			LeaseTTL:  *leaseTTL,
			NewClient: dial,
			Obs:       reg,
			OnHostChange: func(event, hostID string) {
				fmt.Printf("excovery-master: fleet %s -> host %s\n", event, hostID)
			},
		}
		if err := fleet.Connect(); err != nil {
			fatal(err)
		}
		defer fleet.Close()
		handles = fleet.Handles()
		env = fleet.Env()
		fleetMgr = fleet
		if *maxAtt < 2 {
			// A failover only helps if a further attempt lands on the
			// replacement host.
			*maxAtt = 2
		}
		active := fleet.ActiveHost()
		fmt.Printf("excovery-master: session %s claimed host %s (%s, epoch %d) via registry %s, events at %s\n",
			fleet.MasterID, active.ID, active.URL, active.Epoch, *registry, selfURL)
	} else {
		// Static wiring: one host, no registry — the graceful-degradation
		// fallback. The fleet machinery is bypassed entirely.
		hostClient := newClient()
		if _, err := hostClient.Call("host.ping"); err != nil {
			fatal(fmt.Errorf("node host unreachable: %w", err))
		}
		// Register under a fresh session id. With a lease TTL the host tracks
		// this master's liveness: a heartbeat renews the lease, a silent master
		// is dropped at the deadline, and a restarted master (new session id)
		// simply re-adopts the host — no manual node restart needed. The
		// heartbeat also heals a restarted node host: its refused renewal
		// triggers re-registration.
		if *leaseTTL > 0 {
			lease := &noderpc.Lease{C: hostClient, MasterURL: selfURL,
				Session: noderpc.NewSessionID(), TTL: *leaseTTL, Obs: reg}
			if err := lease.Register(); err != nil {
				fatal(err)
			}
			lease.Start()
			defer lease.Stop()
			fmt.Printf("excovery-master: session %s, lease ttl %s\n", lease.Session, *leaseTTL)
		} else if _, err := hostClient.Call("host.set_master", selfURL); err != nil {
			fatal(err)
		}
		nodes, err := noderpc.FetchNodes(hostClient, 5, 500*time.Millisecond)
		if err != nil {
			fatal(err)
		}
		handles = map[string]master.NodeHandle{}
		for _, id := range nodes {
			handles[id] = &noderpc.RemoteNode{NodeID: id, C: newClient()}
		}
		env = &noderpc.RemoteEnv{C: newClient()}
		fmt.Printf("excovery-master: %d remote nodes at %s, events at %s\n",
			len(handles), *hostURL, selfURL)
	}
	// The XML-RPC node proxies are goroutine-safe, so the distributed
	// master defaults to full fan-out across the nodes.
	fo := *fanout
	if fo <= 0 {
		fo = len(handles)
	}

	var st *store.RunStore
	var jnl *store.Journal
	if *storeDir != "" {
		st, err = store.NewRunStore(*storeDir)
		if err != nil {
			fatal(err)
		}
		if *journal {
			jnl, err = store.OpenJournal(*storeDir)
			if err != nil {
				fatal(err)
			}
			defer func() {
				if err := jnl.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "journal close:", err)
				}
			}()
		}
	}

	var fp *failpoint.Registry
	if *crashAt > 0 {
		fp = failpoint.New(1)
		fp.Enable(failpoint.SiteMasterAttempt, failpoint.Rule{
			Prob: 1, Act: failpoint.Crash, Skip: *crashAt - 1, Count: 1})
	}

	m, err := master.New(master.Config{
		Exp: e, S: s, Bus: bus, Nodes: handles,
		Fanout:     fo,
		Env:        env,
		Fleet:      fleetMgr,
		Store:      st,
		Journal:    jnl,
		Resume:     *resume,
		Failpoints: fp,
		Retry: master.RetryPolicy{MaxAttempts: *maxAtt,
			QuarantineAfter: *quarantine, ProbationProbes: *probation},
		CrashFn: func() {
			fmt.Fprintln(os.Stderr, "excovery-master: crash failpoint fired, exiting hard")
			os.Exit(3)
		},
		Tracer: tracer, Status: status, Metrics: reg,
		OnRunDone: func(run desc.Run, rr master.RunResult) {
			fmt.Printf("run %4d done in %s (attempts=%d timeouts=%d err=%v)\n",
				run.ID, rr.Duration.Round(time.Millisecond), rr.Attempts, rr.Timeouts, rr.Err)
		},
	})
	if err != nil {
		fatal(err)
	}

	var rep *master.Report
	var runErr error
	s.Go("experimaster", func() { rep, runErr = m.RunAll() })
	if err := s.Run(); err != nil {
		fatal(err)
	}
	if runErr != nil {
		fatal(runErr)
	}
	fmt.Printf("experiment %q: %d/%d runs completed (%d skipped, %d failed, %d recovered)\n",
		e.Name, rep.Completed, len(rep.Results), rep.Skipped, rep.Failed, rep.Recovered)
	cs := metrics.ControlSummary(rep)
	fmt.Printf("control channel: %d attempts for %d runs, %d retried, %d partial harvests, "+
		"%d/%d health probes failed, quarantined=%v readmitted=%v\n",
		cs.Attempts, cs.Runs, cs.Retried, cs.Partial,
		cs.HealthFailures, cs.HealthProbes, cs.Quarantined, cs.Readmitted)

	ms := metrics.FromReport(e, rep, "", "")
	trs := metrics.TRs(ms)
	if len(trs) > 0 {
		sum := metrics.Summarize(metrics.DurationsToSeconds(trs))
		fmt.Printf("t_R: mean=%.4fs p90=%.4fs over %d complete runs\n", sum.Mean, sum.P90, sum.N)
	}
	if *dbPath != "" && st != nil {
		db, err := m.Finalize()
		if err != nil {
			fatal(err)
		}
		if err := db.Save(*dbPath); err != nil {
			fatal(err)
		}
		fmt.Printf("level-3 database written to %s\n", *dbPath)
	}

	// Like excovery-run: incomplete data fails the invocation unless the
	// caller explicitly accepts it.
	if !*allowFail {
		aborted := 0
		for _, rr := range rep.Results {
			if rr.Aborted {
				aborted++
			}
		}
		if rep.Failed > 0 || aborted > 0 {
			fmt.Fprintf(os.Stderr, "error: %d runs failed (%d aborted); pass -allow-failed to exit zero anyway\n",
				rep.Failed, aborted)
			os.Exit(1)
		}
	}
}

func loadDescription(builtin, path string) (*desc.Experiment, error) {
	switch builtin {
	case "casestudy":
		return desc.CaseStudy(1000), nil
	case "oneshot":
		return desc.OneShot(30), nil
	case "threeparty":
		return desc.ThreeParty(30, 100), nil
	case "":
	default:
		return nil, fmt.Errorf("unknown builtin %q", builtin)
	}
	if path == "" {
		return nil, fmt.Errorf("need a description file or -builtin")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return desc.Parse(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

// Command excovery-node is the node-host half of the distributed
// deployment (Fig. 12): it hosts the emulated platform — network and one
// NodeManager per platform node — and exposes the node actions over an
// XML-RPC control channel for an excovery-master process.
//
// Usage:
//
//	excovery-node -listen :8800 -builtin oneshot
//	excovery-node -listen :8800 -speed 0.01 description.xml
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"excovery/internal/core"
	"excovery/internal/desc"
	"excovery/internal/discovery"
	"excovery/internal/eventlog"
	"excovery/internal/noderpc"
	"excovery/internal/obs"
	"excovery/internal/xmlrpc"
)

func main() {
	var (
		listen    = flag.String("listen", ":8800", "XML-RPC listen address")
		builtin   = flag.String("builtin", "", "host a built-in description: casestudy, oneshot, threeparty")
		speed     = flag.Float64("speed", 0.01, "real-time pacing factor (wall seconds per virtual second)")
		seed      = flag.Int64("seed", 0, "override the experiment seed")
		leaseTTL  = flag.Duration("lease-ttl", 0, "lease imposed on session-aware masters that register without a TTL; a silent master is dropped at the deadline (0 disables)")
		registry  = flag.String("registry", "", "discovery registry XML-RPC endpoint: register this host for claiming by masters (empty: static wiring only)")
		region    = flag.String("region", "", "placement region tag reported to -registry")
		heartbeat = flag.Duration("heartbeat", 5*time.Second, "registry heartbeat period; the registration lease is three heartbeats")
		hostID    = flag.String("host-id", "", "stable registry identity (default: a fresh random id per start)")
		advertise = flag.String("advertise", "", "control endpoint URL advertised to the registry (default: derived from -listen on 127.0.0.1)")
		obsAddr   = flag.String("obs-addr", "", "serve /metrics, /healthz, /status and pprof on this address (empty disables)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: excovery-node [flags] [description.xml]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	e, err := loadDescription(*builtin, flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	// One registry serves the whole host process: the emulator data path
	// (netem/sched, via core.Options.Metrics), the event pump and the RPC
	// server. host.obs_snapshot ships its contents to the master's
	// campaign fan-in after every run.
	reg := obs.NewRegistry()
	var host *noderpc.Host
	x, err := core.New(e, core.Options{
		RealTime: true,
		Speed:    *speed,
		Seed:     *seed,
		OnEvent:  func(ev eventlog.Event) { host.ForwardEvent(ev) },
		Metrics:  reg,
	})
	if err != nil {
		fatal(err)
	}
	host = noderpc.NewHost(x)
	host.SetDefaultLeaseTTL(*leaseTTL)
	x.S.SetKeepAlive(true)

	host.Instrument(reg)
	if *obsAddr != "" {
		osrv, err := obs.Serve(*obsAddr, reg, func() any { return host.Status() })
		if err != nil {
			fatal(err)
		}
		defer osrv.Close()
		fmt.Printf("excovery-node: observability endpoints at http://%s\n", osrv.Addr())
	}

	if *registry != "" {
		// Self-assembling fleet (DESIGN.md §14): announce this host to the
		// discovery registry under a heartbeat-renewed lease. The agent
		// reports the host's accepted fencing epoch with every
		// registration, so a restarted registry re-learns the epoch
		// high-water mark; a refused heartbeat falls back to a full
		// re-registration, healing registry restarts and partitions.
		ids := make([]string, 0, len(x.Managers))
		for id := range x.Managers {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		id := *hostID
		if id == "" {
			id = discovery.NewHostID()
		}
		agent := &discovery.Agent{
			C:         xmlrpc.NewRetryingClient(*registry, xmlrpc.DefaultRetryPolicy()),
			HostID:    id,
			URL:       advertiseURL(*listen, *advertise),
			Nodes:     ids,
			Region:    *region,
			Heartbeat: *heartbeat,
			Epoch:     host.FenceEpoch,
			Obs:       reg,
		}
		if err := agent.Start(); err != nil {
			fatal(err)
		}
		defer agent.Stop()
		fmt.Printf("excovery-node: registered as %s (%s) with registry %s\n",
			id, agent.URL, *registry)
	}

	srv := host.Server()
	fmt.Printf("excovery-node: hosting %q (%d nodes) on %s, speed %.3f\n",
		e.Name, len(x.Managers), *listen, *speed)
	go func() {
		if err := http.ListenAndServe(*listen, srv); err != nil {
			fatal(err)
		}
	}()
	if err := x.S.Run(); err != nil {
		fatal(err)
	}
}

func loadDescription(builtin, path string) (*desc.Experiment, error) {
	switch builtin {
	case "casestudy":
		return desc.CaseStudy(1000), nil
	case "oneshot":
		return desc.OneShot(30), nil
	case "threeparty":
		return desc.ThreeParty(30, 100), nil
	case "":
	default:
		return nil, fmt.Errorf("unknown builtin %q", builtin)
	}
	if path == "" {
		return nil, fmt.Errorf("need a description file or -builtin")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return desc.Parse(f)
}

// advertiseURL derives the control endpoint masters should dial from the
// listen address, unless the operator advertised one explicitly (needed
// behind NAT or when listening on all interfaces of a multi-homed host).
func advertiseURL(listen, advertise string) string {
	if advertise != "" {
		return advertise
	}
	host, port := "127.0.0.1", ""
	if i := strings.LastIndex(listen, ":"); i >= 0 {
		if h := listen[:i]; h != "" && h != "0.0.0.0" && h != "::" && h != "[::]" {
			host = h
		}
		port = listen[i+1:]
	}
	return "http://" + host + ":" + port
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

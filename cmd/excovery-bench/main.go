// Command excovery-bench turns `go test -json -bench` streams (the dated
// BENCH_*.json files in the repo root) into per-benchmark metric series,
// delta tables between two recordings, a CHANGES.md one-liner, and a
// threshold-checked regression gate for CI. It understands the standard
// ns/op, B/op and allocs/op columns as well as the repo's custom
// ReportMetric units (R, t_R_ms, t_R_p90_ms, pkts/10s, violations/op).
//
// Usage:
//
//	excovery-bench NEW.json                     # per-benchmark listing
//	excovery-bench NEW.json OLD.json            # delta table
//	excovery-bench -changes NEW.json            # CHANGES.md note vs newest prior
//	excovery-bench -check bench-thresholds.json NEW.json [OLD.json]
//
// Without an explicit OLD.json, the baseline is the newest other
// BENCH_*.json next to NEW.json (override the directory with
// -baseline-dir). -check exits 2 on a threshold breach.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// now is the wall clock stamped into -changes notes; tests pin it. The
// date is operator-facing metadata, not part of any deterministic replay.
var now = time.Now

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("excovery-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		changes     = fs.Bool("changes", false, "emit the one-line CHANGES.md Fig. 3 allocs/op note")
		checkFile   = fs.String("check", "", "threshold file; exit 2 when NEW regresses past it vs the baseline")
		baselineDir = fs.String("baseline-dir", "", "directory searched for prior BENCH_*.json (default: NEW's directory)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: excovery-bench [flags] NEW.json [OLD.json]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.Arg(0) == "" {
		fs.Usage()
		return 2
	}
	newPath := fs.Arg(0)
	cur, err := parseFile(newPath)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}

	// Resolve the baseline: an explicit second argument wins, otherwise the
	// newest other BENCH_*.json beside NEW (recordings are dated
	// BENCH_YYYYMMDD.json, so lexicographic order is age order).
	basePath := fs.Arg(1)
	if basePath == "" {
		dir := *baselineDir
		if dir == "" {
			dir = filepath.Dir(newPath)
		}
		basePath = newestPrior(dir, newPath)
	}
	var base *suite
	if basePath != "" {
		if base, err = parseFile(basePath); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
	}

	if *changes {
		fmt.Fprintln(stdout, changesNote(cur, base, filepath.Base(newPath), baseName(basePath)))
		return 0
	}
	if *checkFile != "" {
		th, err := loadThresholds(*checkFile)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		if base == nil {
			fmt.Fprintf(stdout, "excovery-bench: no baseline BENCH_*.json; nothing to gate\n")
			return 0
		}
		breaches := checkThresholds(cur, base, th)
		for _, b := range breaches {
			fmt.Fprintln(stdout, b)
		}
		if len(breaches) > 0 {
			fmt.Fprintf(stdout, "excovery-bench: %d threshold breach(es) vs %s\n", len(breaches), baseName(basePath))
			return 2
		}
		fmt.Fprintf(stdout, "excovery-bench: %d benchmarks within thresholds vs %s\n", len(cur.order), baseName(basePath))
		return 0
	}
	if base != nil {
		printDelta(stdout, cur, base, baseName(basePath))
	} else {
		printListing(stdout, cur)
	}
	return 0
}

// series maps a metric unit ("ns/op", "allocs/op", "R", …) to its value.
type series map[string]float64

// suite is one parsed benchmark recording.
type suite struct {
	order []string          // benchmark names, sorted
	bench map[string]series // name → unit → value
}

// resultLine matches one benchmark result line: name, iteration count,
// then tab-separated "value unit" metric columns.
var resultLine = regexp.MustCompile(`^(Benchmark[^\s]+)\s+(\d+)\s+(.+)$`)

// gomaxprocs strips the trailing -N procs suffix the testing package
// appends when GOMAXPROCS != 1, so recordings from different machines
// compare under one name.
var gomaxprocs = regexp.MustCompile(`-\d+$`)

func parseFile(path string) (*suite, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseStream(f)
}

// parseStream decodes a `go test -json` event stream (or, as a fallback,
// plain `go test -bench` text) into a suite. The testing package often
// splits one result line across two consecutive output events — the
// padded name first, the metric columns second — so output is reassembled
// per (package, test) before line parsing.
func parseStream(r io.Reader) (*suite, error) {
	s := &suite{bench: map[string]series{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	pending := map[string]string{} // package/test → unterminated output fragment
	plain := false
	for sc.Scan() {
		line := sc.Text()
		if plain || (line != "" && line[0] != '{') {
			plain = true
			s.addLine(line)
			continue
		}
		var ev struct {
			Action  string
			Package string
			Test    string
			Output  string
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("%w (in test2json event stream)", err)
		}
		if ev.Action != "output" {
			continue
		}
		key := ev.Package + "/" + ev.Test
		buf := pending[key] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			s.addLine(buf[:nl])
			buf = buf[nl+1:]
		}
		if buf == "" {
			delete(pending, key)
		} else {
			pending[key] = buf
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, buf := range pending {
		s.addLine(buf)
	}
	if len(s.order) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	sort.Strings(s.order)
	return s, nil
}

// addLine parses one output line, recording it when it is a benchmark
// result. A repeated name (go test -count > 1) keeps the last run.
func (s *suite) addLine(line string) {
	m := resultLine.FindStringSubmatch(strings.TrimRight(line, "\r"))
	if m == nil {
		return
	}
	name := gomaxprocs.ReplaceAllString(m[1], "")
	ser := series{}
	for _, field := range strings.Split(m[3], "\t") {
		parts := strings.Fields(field)
		if len(parts) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			continue
		}
		ser[parts[1]] = v
	}
	if len(ser) == 0 {
		return
	}
	if _, seen := s.bench[name]; !seen {
		s.order = append(s.order, name)
	}
	s.bench[name] = ser
}

// unitOrder ranks units for display: the standard columns first, custom
// ReportMetric units after, alphabetically.
func unitOrder(ser series) []string {
	rank := map[string]int{"ns/op": 0, "B/op": 1, "allocs/op": 2}
	units := make([]string, 0, len(ser))
	for u := range ser {
		units = append(units, u)
	}
	sort.Slice(units, func(i, j int) bool {
		ri, iok := rank[units[i]]
		rj, jok := rank[units[j]]
		if iok != jok {
			return iok
		}
		if iok && jok {
			return ri < rj
		}
		return units[i] < units[j]
	})
	return units
}

func printListing(w io.Writer, cur *suite) {
	for _, name := range cur.order {
		ser := cur.bench[name]
		cols := make([]string, 0, len(ser))
		for _, u := range unitOrder(ser) {
			cols = append(cols, fmt.Sprintf("%s %s", formatValue(ser[u]), u))
		}
		fmt.Fprintf(w, "%-55s %s\n", name, strings.Join(cols, "  "))
	}
}

func printDelta(w io.Writer, cur, base *suite, baseLabel string) {
	fmt.Fprintf(w, "%-55s %-14s %14s %14s %9s\n", "benchmark (vs "+baseLabel+")", "unit", "old", "new", "delta")
	for _, name := range cur.order {
		ser := cur.bench[name]
		old, ok := base.bench[name]
		if !ok {
			fmt.Fprintf(w, "%-55s %-14s %14s %14s %9s\n", name, "-", "-", formatValue(ser["ns/op"]), "new")
			continue
		}
		for _, u := range unitOrder(ser) {
			ov, has := old[u]
			if !has {
				continue
			}
			fmt.Fprintf(w, "%-55s %-14s %14s %14s %9s\n",
				name, u, formatValue(ov), formatValue(ser[u]), formatPct(pctDelta(ov, ser[u])))
		}
	}
	for _, name := range base.order {
		if _, ok := cur.bench[name]; !ok {
			fmt.Fprintf(w, "%-55s %-14s %14s %14s %9s\n", name, "-", formatValue(base.bench[name]["ns/op"]), "-", "gone")
		}
	}
}

// formatValue renders integral metric values without a fraction and keeps
// four significant digits on fractional ones, echoing go test's style.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// pctDelta is the old→new change in percent; a zero baseline with a
// nonzero new value counts as +100%.
func pctDelta(old, cur float64) float64 {
	if old == 0 {
		if cur == 0 {
			return 0
		}
		return 100
	}
	return (cur - old) * 100 / old
}

func formatPct(p float64) string {
	return fmt.Sprintf("%+.1f%%", p)
}

// changesNote renders the CHANGES.md one-liner previously emitted by
// scripts/bench-delta.sh, byte-compatible with the historical format —
// except that the baseline is the newest prior recording, not the oldest
// (comparing a fresh run against the repo's first-ever recording made
// every note report cumulative drift instead of this session's delta).
func changesNote(cur, base *suite, newLabel, baseLabel string) string {
	const fig3 = "BenchmarkFig3FullWorkflow"
	day := now().Format("2006-01-02")
	curSer, ok := cur.bench[fig3]
	if !ok {
		return fmt.Sprintf("- bench %s (%s): %s missing from the run.", day, newLabel, fig3)
	}
	curAllocs := int64(curSer["allocs/op"])
	if base == nil {
		return fmt.Sprintf("- bench %s (%s): Fig. 3 full workflow at %d allocs/op (no prior BENCH_*.json to compare against).",
			day, newLabel, curAllocs)
	}
	oldSer, ok := base.bench[fig3]
	if !ok {
		return fmt.Sprintf("- bench %s (%s): Fig. 3 full workflow at %d allocs/op (%s has no Fig. 3 line).",
			day, newLabel, curAllocs, baseLabel)
	}
	oldAllocs := int64(oldSer["allocs/op"])
	return fmt.Sprintf("- bench %s (%s): Fig. 3 full workflow %d -> %d allocs/op (%s vs %s).",
		day, newLabel, oldAllocs, curAllocs,
		formatPct(pctDelta(float64(oldAllocs), float64(curAllocs))), baseLabel)
}

// newestPrior returns the lexicographically greatest BENCH_*.json in dir
// other than newPath itself, or "".
func newestPrior(dir, newPath string) string {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return ""
	}
	sort.Strings(matches)
	newAbs, _ := filepath.Abs(newPath)
	for i := len(matches) - 1; i >= 0; i-- {
		abs, _ := filepath.Abs(matches[i])
		if abs != newAbs && filepath.Base(matches[i]) != filepath.Base(newPath) {
			return matches[i]
		}
	}
	return ""
}

func baseName(path string) string {
	if path == "" {
		return ""
	}
	return filepath.Base(path)
}

// thresholds is the -check configuration: per-unit regression ceilings,
// with optional per-benchmark overrides. MaxIncreasePct gates
// lower-is-better units (allocs/op, B/op, ns/op); MaxDecreasePct gates
// higher-is-better ones (R). A unit absent from both maps is not gated.
type thresholds struct {
	MaxIncreasePct map[string]float64 `json:"max_increase_pct"`
	MaxDecreasePct map[string]float64 `json:"max_decrease_pct"`
	Benchmarks     map[string]struct {
		MaxIncreasePct map[string]float64 `json:"max_increase_pct"`
		MaxDecreasePct map[string]float64 `json:"max_decrease_pct"`
	} `json:"benchmarks"`
}

func loadThresholds(path string) (*thresholds, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	th := &thresholds{}
	if err := json.Unmarshal(b, th); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return th, nil
}

// limits resolves the effective ceilings for one benchmark/unit pair:
// the per-benchmark override when present, the global map otherwise.
func (th *thresholds) limits(bench, unit string) (maxInc, maxDec float64, incOK, decOK bool) {
	if o, ok := th.Benchmarks[bench]; ok {
		if v, ok := o.MaxIncreasePct[unit]; ok {
			maxInc, incOK = v, true
		}
		if v, ok := o.MaxDecreasePct[unit]; ok {
			maxDec, decOK = v, true
		}
	}
	if !incOK {
		maxInc, incOK = th.MaxIncreasePct[unit], mapHas(th.MaxIncreasePct, unit)
	}
	if !decOK {
		maxDec, decOK = th.MaxDecreasePct[unit], mapHas(th.MaxDecreasePct, unit)
	}
	return
}

func mapHas(m map[string]float64, k string) bool {
	_, ok := m[k]
	return ok
}

// checkThresholds compares every benchmark present in both recordings
// against the configured ceilings and describes each breach.
func checkThresholds(cur, base *suite, th *thresholds) []string {
	var out []string
	for _, name := range cur.order {
		ser := cur.bench[name]
		old, ok := base.bench[name]
		if !ok {
			continue
		}
		for _, u := range unitOrder(ser) {
			ov, has := old[u]
			if !has {
				continue
			}
			maxInc, maxDec, incOK, decOK := th.limits(name, u)
			d := pctDelta(ov, ser[u])
			if incOK && d > maxInc {
				out = append(out, fmt.Sprintf("REGRESSION %s %s: %s -> %s (%s, limit %+.1f%%)",
					name, u, formatValue(ov), formatValue(ser[u]), formatPct(d), maxInc))
			}
			if decOK && d < -maxDec {
				out = append(out, fmt.Sprintf("REGRESSION %s %s: %s -> %s (%s, limit -%.1f%%)",
					name, u, formatValue(ov), formatValue(ser[u]), formatPct(d), maxDec))
			}
		}
	}
	return out
}

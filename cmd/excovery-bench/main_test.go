package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// pinClock fixes the -changes date stamp for golden comparisons.
func pinClock(t *testing.T) {
	t.Helper()
	saved := now
	now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	t.Cleanup(func() { now = saved })
}

// writeBench writes a minimal plain-text benchmark recording — the parser
// accepts both test2json streams and raw `go test -bench` output.
func writeBench(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseBench = "goos: linux\n" +
	"BenchmarkFig3FullWorkflow \t     170\t  14144909 ns/op\t 1583934 B/op\t    6000 allocs/op\n" +
	"BenchmarkFig11OneShot     \t    2968\t   1895636 ns/op\t         0.9815 R\t        92.07 t_R_ms\t   97719 B/op\t     726 allocs/op\n"

const newBench = "goos: linux\n" +
	"BenchmarkFig3FullWorkflow \t     170\t  14000000 ns/op\t 1600000 B/op\t    6127 allocs/op\n" +
	"BenchmarkFig11OneShot     \t    2968\t   1900000 ns/op\t         0.9800 R\t        92.50 t_R_ms\t   98000 B/op\t     727 allocs/op\n"

// regressedBench injects a >10% allocs/op regression on the Fig. 3
// workflow (6000 → 7000 = +16.7%) — the ISSUE's gate acceptance fixture.
const regressedBench = "BenchmarkFig3FullWorkflow \t     150\t  14500000 ns/op\t 1583934 B/op\t    7000 allocs/op\n" +
	"BenchmarkFig11OneShot     \t    2968\t   1895636 ns/op\t         0.9815 R\t        92.07 t_R_ms\t   97719 B/op\t     726 allocs/op\n"

// TestParseRealRecording parses the repo's committed benchmark recording:
// every benchmark line must survive the split-event reassembly, including
// the custom R / t_R_ms / t_R_p90_ms ReportMetric units.
func TestParseRealRecording(t *testing.T) {
	real := filepath.Join("..", "..", "BENCH_20260805.json")
	if _, err := os.Stat(real); err != nil {
		t.Skip("no BENCH_20260805.json in repo root")
	}
	s, err := parseFile(real)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.order) < 30 {
		t.Fatalf("parsed only %d benchmarks, want the full recording (≥30)", len(s.order))
	}
	fig3 := s.bench["BenchmarkFig3FullWorkflow"]
	if fig3 == nil || fig3["allocs/op"] != 6127 {
		t.Fatalf("Fig. 3 allocs/op = %v, want 6127", fig3)
	}
	oneShot := s.bench["BenchmarkFig11OneShot"]
	if oneShot["R"] != 0.9815 || oneShot["t_R_ms"] != 92.07 || oneShot["t_R_p90_ms"] != 114.2 {
		t.Fatalf("Fig. 11 custom metrics = %v", oneShot)
	}
	for _, name := range s.order {
		if s.bench[name]["ns/op"] == 0 {
			t.Errorf("%s has no ns/op", name)
		}
	}
	// Subtests with slashes and name/metrics splits both land.
	if s.bench["BenchmarkExpDArchitectureUnderLoad/three-party/load=400"]["allocs/op"] != 123544 {
		t.Error("split-line subtest benchmark not reassembled")
	}
}

// TestChangesNote locks the CHANGES.md one-liner byte-for-byte, and pins
// the newest-prior baseline selection (the shell script it replaces
// compared against the oldest recording).
func TestChangesNote(t *testing.T) {
	pinClock(t)
	dir := t.TempDir()
	writeBench(t, dir, "BENCH_20260101.json",
		"BenchmarkFig3FullWorkflow \t 100\t 99 ns/op\t 9 B/op\t 9999 allocs/op\n")
	writeBench(t, dir, "BENCH_20260601.json", baseBench)
	newPath := writeBench(t, dir, "BENCH_20260808.json", newBench)

	var out, errb bytes.Buffer
	if code := run([]string{"-changes", newPath}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	want := "- bench 2026-08-08 (BENCH_20260808.json): Fig. 3 full workflow 6000 -> 6127 allocs/op (+2.1% vs BENCH_20260601.json).\n"
	if out.String() != want {
		t.Errorf("changes note:\n got %q\nwant %q", out.String(), want)
	}
}

// TestChangesNoteNoBaseline covers the first-recording case.
func TestChangesNoteNoBaseline(t *testing.T) {
	pinClock(t)
	dir := t.TempDir()
	newPath := writeBench(t, dir, "BENCH_20260808.json", newBench)
	var out bytes.Buffer
	if code := run([]string{"-changes", newPath}, &out, &out); code != 0 {
		t.Fatalf("exit %d: %s", code, out.String())
	}
	want := "- bench 2026-08-08 (BENCH_20260808.json): Fig. 3 full workflow at 6127 allocs/op (no prior BENCH_*.json to compare against).\n"
	if out.String() != want {
		t.Errorf("changes note:\n got %q\nwant %q", out.String(), want)
	}
}

// TestCheckGate exercises the regression gate both ways against the
// checked-in thresholds: a mild drift passes, the injected >10% allocs/op
// regression exits non-zero and names the offender.
func TestCheckGate(t *testing.T) {
	dir := t.TempDir()
	basePath := writeBench(t, dir, "BENCH_20260601.json", baseBench)
	okPath := writeBench(t, dir, "ok.json", newBench)
	badPath := writeBench(t, dir, "bad.json", regressedBench)
	thPath := filepath.Join("..", "..", "bench-thresholds.json")

	var out bytes.Buffer
	if code := run([]string{"-check", thPath, okPath, basePath}, &out, &out); code != 0 {
		t.Fatalf("mild drift gated: exit %d\n%s", code, out.String())
	}
	out.Reset()
	code := run([]string{"-check", thPath, badPath, basePath}, &out, &out)
	if code != 2 {
		t.Fatalf("injected +16.7%% allocs/op regression passed the gate: exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION BenchmarkFig3FullWorkflow allocs/op: 6000 -> 7000") {
		t.Errorf("breach not reported:\n%s", out.String())
	}
}

// TestDeltaTable smoke-checks the two-file comparison output.
func TestDeltaTable(t *testing.T) {
	dir := t.TempDir()
	basePath := writeBench(t, dir, "BENCH_20260601.json", baseBench)
	newPath := writeBench(t, dir, "new.json", newBench)
	var out bytes.Buffer
	if code := run([]string{newPath, basePath}, &out, &out); code != 0 {
		t.Fatalf("exit %d: %s", code, out.String())
	}
	for _, want := range []string{
		"BenchmarkFig3FullWorkflow",
		"allocs/op",
		"+2.1%",  // 6000 → 6127
		"t_R_ms", // custom units compare too
		"-1.0%",  // ns/op 14144909 → 14000000
		"-0.2%",  // R 0.9815 → 0.98
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("delta table missing %q:\n%s", want, out.String())
		}
	}
}

// TestListingSingleFile smoke-checks the one-file listing mode.
func TestListingSingleFile(t *testing.T) {
	dir := t.TempDir()
	newPath := writeBench(t, dir, "new.json", newBench)
	var out bytes.Buffer
	if code := run([]string{newPath}, &out, &out); code != 0 {
		t.Fatalf("exit %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkFig11OneShot") ||
		!strings.Contains(out.String(), "0.98 R") {
		t.Errorf("listing:\n%s", out.String())
	}
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module and chdirs into it so
// moduleRoot() resolves there.
func writeModule(t *testing.T, files map[string]string) {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(root)
}

func TestRunCleanModuleExitsZero(t *testing.T) {
	writeModule(t, map[string]string{
		"go.mod": "module demo\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc Add(x, y int) int { return x + y }\n",
	})
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0; stdout=%q stderr=%q", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean module produced output: %q", out.String())
	}
}

func TestRunFindingsExitOneAndJSON(t *testing.T) {
	writeModule(t, map[string]string{
		"go.mod": "module demo\n\ngo 1.22\n",
		"a/a.go": "package a\n\nimport \"time\"\n\nfunc Now() time.Time { return time.Now() }\n",
	})
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1; stderr=%q", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "a/a.go:5: [walltime]") {
		t.Errorf("text output = %q, want a walltime finding at a/a.go:5", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-json"}, &out, &errOut); code != 1 {
		t.Fatalf("-json exit %d, want 1; stderr=%q", code, errOut.String())
	}
	var d struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(out.String())), &d); err != nil {
		t.Fatalf("-json output is not one JSON object per line: %q: %v", out.String(), err)
	}
	if d.File != "a/a.go" || d.Line != 5 || d.Check != "walltime" || d.Message == "" {
		t.Errorf("JSON diagnostic = %+v, want walltime at a/a.go:5", d)
	}
}

func TestRunBrokenModuleExitsTwo(t *testing.T) {
	writeModule(t, map[string]string{
		"go.mod":     "module demo\n\ngo 1.22\n",
		"bad/bad.go": "package bad\n\nfunc broken( {\n",
	})
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2; stdout=%q stderr=%q", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "[driver] cannot parse:") {
		t.Errorf("stdout = %q, want a driver parse diagnostic", out.String())
	}
	if !strings.Contains(errOut.String(), "analysis incomplete") {
		t.Errorf("stderr = %q, want the incomplete-analysis notice", errOut.String())
	}
}

func TestRunBadFlagExitsTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

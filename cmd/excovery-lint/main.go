// Command excovery-lint runs the repo's invariant linter (internal/lint)
// over the module containing the working directory and reports findings as
//
//	file:line: [check] message
//
// with module-root-relative filenames. Exit status: 0 with no findings,
// 1 with findings, 2 when the module cannot be loaded. Arguments are
// accepted for familiarity ("excovery-lint ./...") but the tool always
// analyzes the whole module — the invariants are module-wide contracts,
// and partial runs would let a violation hide in an unlinted package.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"excovery/internal/lint"
)

func main() {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "excovery-lint: %v\n", err)
		os.Exit(2)
	}
	mod, err := lint.Load(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "excovery-lint: %v\n", err)
		os.Exit(2)
	}
	diags := mod.Run(lint.All())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "excovery-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks upward from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

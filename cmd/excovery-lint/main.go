// Command excovery-lint runs the repo's invariant linter (internal/lint)
// over the module containing the working directory and reports findings as
//
//	file:line: [check] message
//
// with module-root-relative filenames, or with -json as one JSON object
// per line ({"file","line","check","message"}) for machine consumers such
// as the CI annotation step. Exit status: 0 with no findings, 1 with
// findings, 2 when the module cannot be loaded in full — a partial
// analysis must never pass as clean. Arguments are accepted for
// familiarity ("excovery-lint ./...") but the tool always analyzes the
// whole module — the invariants are module-wide contracts, and partial
// runs would let a violation hide in an unlinted package.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"excovery/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("excovery-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit one JSON diagnostic per line")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "excovery-lint: %v\n", err)
		return 2
	}
	mod, err := lint.Load(root)
	if err != nil {
		fmt.Fprintf(stderr, "excovery-lint: %v\n", err)
		return 2
	}
	// Driver diagnostics (parse/type-check failures and skipped dependents)
	// are printed like findings but force exit 2: the analysis did not
	// cover the module, so "no findings" proves nothing.
	if errs := mod.LoadErrors(); len(errs) > 0 {
		emit(stdout, errs, *asJSON)
		fmt.Fprintf(stderr, "excovery-lint: %d package(s) failed to load; analysis incomplete\n", len(errs))
		return 2
	}
	diags := mod.Run(lint.All())
	emit(stdout, diags, *asJSON)
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "excovery-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func emit(w io.Writer, diags []lint.Diagnostic, asJSON bool) {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		if asJSON {
			enc.Encode(struct {
				File    string `json:"file"`
				Line    int    `json:"line"`
				Check   string `json:"check"`
				Message string `json:"message"`
			}{d.Pos.Filename, d.Pos.Line, d.Check, d.Message})
			continue
		}
		fmt.Fprintln(w, d)
	}
}

// moduleRoot walks upward from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Command excovery-report extracts metrics from a level-3 experiment
// database: experiment metadata, per-run discovery times, responsiveness
// at configurable deadlines, grouped by a factor, plus packet statistics.
//
// Usage:
//
//	excovery-report exp1.xcdb
//	excovery-report -group fact_bw -deadlines 0.5,1,5 exp1.xcdb
//	excovery-report -events -run 3 exp1.xcdb
//	excovery-report -trace trace3.json -run 3 exp1.xcdb
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"excovery/internal/metrics"
	"excovery/internal/obs"
	"excovery/internal/store"
	"excovery/internal/viz"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// reportFlags carries the parsed CLI configuration into report.
type reportFlags struct {
	group     string
	deadlines string
	events    bool
	run       int
	traceOut  string
	packets   bool
	timeline  bool
	repo      bool
	csvOut    string
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("excovery-report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var rf reportFlags
	fs.StringVar(&rf.group, "group", "", "group metrics by this factor id")
	fs.StringVar(&rf.deadlines, "deadlines", "1,5,30", "responsiveness deadlines in seconds, comma separated")
	fs.BoolVar(&rf.events, "events", false, "dump the event list of -run")
	fs.IntVar(&rf.run, "run", 0, "run id for -events/-timeline/-packets/-trace")
	fs.StringVar(&rf.traceOut, "trace", "", "export the execution trace of -run as Chrome trace_event JSON to this file (- for stdout)")
	fs.BoolVar(&rf.packets, "packets", false, "print packet statistics of -run")
	fs.BoolVar(&rf.timeline, "timeline", false, "render the Fig. 11 style timeline of -run")
	fs.BoolVar(&rf.repo, "repo", false, "treat the argument as a level-4 repository directory and summarize all experiments")
	fs.StringVar(&rf.csvOut, "csv", "", "export per-run metrics as CSV to this file (- for stdout)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: excovery-report [flags] experiment.xcdb\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.Arg(0) == "" {
		fs.Usage()
		return 2
	}
	if err := report(rf, fs.Arg(0), stdout); err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	return 0
}

func report(rf reportFlags, arg string, stdout io.Writer) error {
	if rf.repo {
		return reportRepository(arg, stdout)
	}
	db, err := store.OpenExperimentDB(arg)
	if err != nil {
		return err
	}
	// Trace export runs before the banner: with `-trace -` stdout must
	// carry nothing but the Chrome trace JSON.
	if rf.traceOut != "" {
		return exportTrace(db, rf.run, rf.traceOut, stdout)
	}
	info, err := db.Info()
	if err != nil {
		return err
	}
	runs, err := db.RunIDs()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "experiment %q — %s (%d runs, %s)\n", info.Name, info.Comment, len(runs), store.EEVersion)

	if rf.events {
		evs, err := db.EventsOfRun(rf.run)
		if err != nil {
			return err
		}
		for _, ev := range evs {
			fmt.Fprintln(stdout, " ", ev)
		}
		return nil
	}
	if rf.timeline {
		evs, err := db.EventsOfRun(rf.run)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "run %d — %s\n\n", rf.run, viz.Phases(evs))
		fmt.Fprint(stdout, viz.Timeline(evs, 72))
		return nil
	}
	if rf.packets {
		pkts, err := db.PacketsOfRun(rf.run)
		if err != nil {
			return err
		}
		st := metrics.AnalyzePackets(pkts)
		fmt.Fprintf(stdout, "run %d packets: tx=%d rx=%d delivered=%d loss=%.3f meandelay=%s\n",
			rf.run, st.TxCount, st.RxCount, st.Delivered, st.LossRate, st.MeanDelay)
		// Per-packet request/response association (§VI): one line per
		// query sent by each node in this run.
		nodes := map[string]bool{}
		for _, p := range pkts {
			nodes[p.Src] = true
		}
		names := make([]string, 0, len(nodes))
		for n := range nodes {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			for _, q := range metrics.QueryPairs(pkts, n) {
				status := "unanswered"
				if q.Answered {
					status = q.RTT().String()
				}
				fmt.Fprintf(stdout, "  query qid=%d from %s: %s\n", q.QID, q.Node, status)
			}
		}
		return nil
	}

	ms, err := metrics.FromDB(db, "", "")
	if err != nil {
		return err
	}
	if rf.csvOut != "" {
		if rf.csvOut == "-" {
			return metrics.WriteCSV(stdout, ms)
		}
		f, err := os.Create(rf.csvOut)
		if err != nil {
			return err
		}
		if err := metrics.WriteCSV(f, ms); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d rows to %s\n", len(ms), rf.csvOut)
		return nil
	}
	var dls []time.Duration
	for _, part := range strings.Split(rf.deadlines, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return fmt.Errorf("bad deadline %q", part)
		}
		dls = append(dls, time.Duration(v*float64(time.Second)))
	}

	printGroup := func(label string, ms []metrics.RunMetric) {
		trs := metrics.TRs(ms)
		line := fmt.Sprintf("%-12s n=%-5d complete=%-5d", label, len(ms), len(trs))
		for _, d := range dls {
			line += fmt.Sprintf(" R(%s)=%.3f", d, metrics.Responsiveness(ms, d))
		}
		if len(trs) > 0 {
			s := metrics.Summarize(metrics.DurationsToSeconds(trs))
			line += fmt.Sprintf("  t_R mean=%.4fs p90=%.4fs", s.Mean, s.P90)
		}
		fmt.Fprintln(stdout, line)
	}

	if rf.group == "" {
		printGroup("all", ms)
		return nil
	}
	groups := metrics.GroupBy(ms, rf.group)
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, erra := strconv.Atoi(keys[i])
		b, errb := strconv.Atoi(keys[j])
		if erra == nil && errb == nil {
			return a < b
		}
		return keys[i] < keys[j]
	})
	fmt.Fprintf(stdout, "grouped by %s:\n", rf.group)
	for _, k := range keys {
		printGroup(rf.group+"="+k, groups[k])
	}
	return nil
}

// exportTrace converts one run's trace.json level-2 artifact (recorded by
// the master's tracer, stored as an extra run measurement) into Chrome
// trace_event JSON loadable in chrome://tracing or Perfetto.
func exportTrace(db *store.ExperimentDB, run int, path string, stdout io.Writer) error {
	extras, err := db.ExtrasOfRun(run)
	if err != nil {
		return err
	}
	var spans []obs.Span
	found := false
	for _, x := range extras {
		if x.Name != "trace.json" {
			continue
		}
		s, err := obs.UnmarshalSpans(x.Content)
		if err != nil {
			return fmt.Errorf("run %d: bad trace artifact from node %s: %w", run, x.Node, err)
		}
		spans = append(spans, s...)
		found = true
	}
	if !found {
		return fmt.Errorf("run %d has no trace.json artifact (master ran without a tracer?)", run)
	}
	out := obs.ChromeTrace(spans)
	if path == "-" {
		_, err := stdout.Write(out)
		return err
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d spans of run %d to %s\n", len(spans), run, path)
	return nil
}

// reportRepository summarizes a level-4 repository: one line per stored
// experiment with run counts and overall responsiveness — the
// cross-experiment comparison level the paper leaves to future work.
func reportRepository(dir string, stdout io.Writer) error {
	r, err := store.OpenRepository(dir)
	if err != nil {
		return err
	}
	names, err := r.List()
	if err != nil {
		return err
	}
	if len(names) == 0 {
		fmt.Fprintln(stdout, "repository is empty")
		return nil
	}
	fmt.Fprintf(stdout, "%-24s %-8s %-10s %-10s %-8s\n", "experiment", "runs", "t_R mean", "t_R p90", "R(1s)")
	return r.ForEach(func(name string, db *store.ExperimentDB) error {
		ms, err := metrics.FromDB(db, "", "")
		if err != nil {
			return err
		}
		trs := metrics.TRs(ms)
		sum := metrics.Summarize(metrics.DurationsToSeconds(trs))
		fmt.Fprintf(stdout, "%-24s %-8d %-10s %-10s %-8.3f\n", name, len(ms),
			fmt.Sprintf("%.4fs", sum.Mean), fmt.Sprintf("%.4fs", sum.P90),
			metrics.Responsiveness(ms, time.Second))
		return nil
	})
}

// Command excovery-report extracts metrics from a level-3 experiment
// database: experiment metadata, per-run discovery times, responsiveness
// at configurable deadlines, grouped by a factor, plus packet statistics.
//
// Usage:
//
//	excovery-report exp1.xcdb
//	excovery-report -group fact_bw -deadlines 0.5,1,5 exp1.xcdb
//	excovery-report -events -run 3 exp1.xcdb
//	excovery-report -trace trace3.json -run 3 exp1.xcdb
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"excovery/internal/metrics"
	"excovery/internal/obs"
	"excovery/internal/store"
	"excovery/internal/viz"
)

func main() {
	var (
		group     = flag.String("group", "", "group metrics by this factor id")
		deadlines = flag.String("deadlines", "1,5,30", "responsiveness deadlines in seconds, comma separated")
		events    = flag.Bool("events", false, "dump the event list of -run")
		run       = flag.Int("run", 0, "run id for -events/-timeline/-packets/-trace")
		traceOut  = flag.String("trace", "", "export the execution trace of -run as Chrome trace_event JSON to this file (- for stdout)")
		packets   = flag.Bool("packets", false, "print packet statistics of -run")
		timeline  = flag.Bool("timeline", false, "render the Fig. 11 style timeline of -run")
		repo      = flag.Bool("repo", false, "treat the argument as a level-4 repository directory and summarize all experiments")
		csvOut    = flag.String("csv", "", "export per-run metrics as CSV to this file (- for stdout)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: excovery-report [flags] experiment.xcdb\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.Arg(0) == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *repo {
		reportRepository(flag.Arg(0))
		return
	}
	db, err := store.OpenExperimentDB(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	// Trace export runs before the banner: with `-trace -` stdout must
	// carry nothing but the Chrome trace JSON.
	if *traceOut != "" {
		if err := exportTrace(db, *run, *traceOut); err != nil {
			fatal(err)
		}
		return
	}
	info, err := db.Info()
	if err != nil {
		fatal(err)
	}
	runs, err := db.RunIDs()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("experiment %q — %s (%d runs, %s)\n", info.Name, info.Comment, len(runs), store.EEVersion)

	if *events {
		evs, err := db.EventsOfRun(*run)
		if err != nil {
			fatal(err)
		}
		for _, ev := range evs {
			fmt.Println(" ", ev)
		}
		return
	}
	if *timeline {
		evs, err := db.EventsOfRun(*run)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("run %d — %s\n\n", *run, viz.Phases(evs))
		fmt.Print(viz.Timeline(evs, 72))
		return
	}
	if *packets {
		pkts, err := db.PacketsOfRun(*run)
		if err != nil {
			fatal(err)
		}
		st := metrics.AnalyzePackets(pkts)
		fmt.Printf("run %d packets: tx=%d rx=%d delivered=%d loss=%.3f meandelay=%s\n",
			*run, st.TxCount, st.RxCount, st.Delivered, st.LossRate, st.MeanDelay)
		// Per-packet request/response association (§VI): one line per
		// query sent by each node in this run.
		nodes := map[string]bool{}
		for _, p := range pkts {
			nodes[p.Src] = true
		}
		names := make([]string, 0, len(nodes))
		for n := range nodes {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			for _, q := range metrics.QueryPairs(pkts, n) {
				status := "unanswered"
				if q.Answered {
					status = q.RTT().String()
				}
				fmt.Printf("  query qid=%d from %s: %s\n", q.QID, q.Node, status)
			}
		}
		return
	}

	ms, err := metrics.FromDB(db, "", "")
	if err != nil {
		fatal(err)
	}
	if *csvOut != "" {
		out := os.Stdout
		if *csvOut != "-" {
			f, err := os.Create(*csvOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := metrics.WriteCSV(out, ms); err != nil {
			fatal(err)
		}
		if *csvOut != "-" {
			fmt.Printf("wrote %d rows to %s\n", len(ms), *csvOut)
		}
		return
	}
	var dls []time.Duration
	for _, part := range strings.Split(*deadlines, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal(fmt.Errorf("bad deadline %q", part))
		}
		dls = append(dls, time.Duration(v*float64(time.Second)))
	}

	printGroup := func(label string, ms []metrics.RunMetric) {
		trs := metrics.TRs(ms)
		line := fmt.Sprintf("%-12s n=%-5d complete=%-5d", label, len(ms), len(trs))
		for _, d := range dls {
			line += fmt.Sprintf(" R(%s)=%.3f", d, metrics.Responsiveness(ms, d))
		}
		if len(trs) > 0 {
			s := metrics.Summarize(metrics.DurationsToSeconds(trs))
			line += fmt.Sprintf("  t_R mean=%.4fs p90=%.4fs", s.Mean, s.P90)
		}
		fmt.Println(line)
	}

	if *group == "" {
		printGroup("all", ms)
		return
	}
	groups := metrics.GroupBy(ms, *group)
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, erra := strconv.Atoi(keys[i])
		b, errb := strconv.Atoi(keys[j])
		if erra == nil && errb == nil {
			return a < b
		}
		return keys[i] < keys[j]
	})
	fmt.Printf("grouped by %s:\n", *group)
	for _, k := range keys {
		printGroup(*group+"="+k, groups[k])
	}
}

// exportTrace converts one run's trace.json level-2 artifact (recorded by
// the master's tracer, stored as an extra run measurement) into Chrome
// trace_event JSON loadable in chrome://tracing or Perfetto.
func exportTrace(db *store.ExperimentDB, run int, path string) error {
	extras, err := db.ExtrasOfRun(run)
	if err != nil {
		return err
	}
	var spans []obs.Span
	found := false
	for _, x := range extras {
		if x.Name != "trace.json" {
			continue
		}
		s, err := obs.UnmarshalSpans(x.Content)
		if err != nil {
			return fmt.Errorf("run %d: bad trace artifact from node %s: %w", run, x.Node, err)
		}
		spans = append(spans, s...)
		found = true
	}
	if !found {
		return fmt.Errorf("run %d has no trace.json artifact (master ran without a tracer?)", run)
	}
	out := obs.ChromeTrace(spans)
	if path == "-" {
		_, err := os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d spans of run %d to %s\n", len(spans), run, path)
	return nil
}

// reportRepository summarizes a level-4 repository: one line per stored
// experiment with run counts and overall responsiveness — the
// cross-experiment comparison level the paper leaves to future work.
func reportRepository(dir string) {
	r, err := store.OpenRepository(dir)
	if err != nil {
		fatal(err)
	}
	names, err := r.List()
	if err != nil {
		fatal(err)
	}
	if len(names) == 0 {
		fmt.Println("repository is empty")
		return
	}
	fmt.Printf("%-24s %-8s %-10s %-10s %-8s\n", "experiment", "runs", "t_R mean", "t_R p90", "R(1s)")
	err = r.ForEach(func(name string, db *store.ExperimentDB) error {
		ms, err := metrics.FromDB(db, "", "")
		if err != nil {
			return err
		}
		trs := metrics.TRs(ms)
		sum := metrics.Summarize(metrics.DurationsToSeconds(trs))
		fmt.Printf("%-24s %-8d %-10s %-10s %-8.3f\n", name, len(ms),
			fmt.Sprintf("%.4fs", sum.Mean), fmt.Sprintf("%.4fs", sum.P90),
			metrics.Responsiveness(ms, time.Second))
		return nil
	})
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

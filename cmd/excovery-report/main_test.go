package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"excovery/internal/core"
	"excovery/internal/desc"
)

// buildFixtureDB runs the Fig. 11 one-shot experiment (virtual time,
// fixed seed — fully deterministic) into a level-3 database file.
func buildFixtureDB(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	x, err := core.New(desc.OneShot(30), core.Options{StoreDir: filepath.Join(dir, "level2")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Run(); err != nil {
		t.Fatal(err)
	}
	db, err := x.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "exp.xcdb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReportSummary smoke-tests the default summary mode over a fixture
// database: the banner and the deterministic metric line.
func TestReportSummary(t *testing.T) {
	path := buildFixtureDB(t)
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{
		`experiment "sd-oneshot"`,
		"(1 runs,",
		"n=1",
		"complete=1",
		"R(1s)=1.000",
		"t_R mean=0.0413s", // the Fig. 11 discovery takes 41.276 ms, always
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, out.String())
		}
	}
}

// TestReportEventsAndCSV smoke-tests the -events dump and -csv export.
func TestReportEventsAndCSV(t *testing.T) {
	path := buildFixtureDB(t)
	var out bytes.Buffer
	if code := run([]string{"-events", "-run", "0", path}, &out, &out); code != 0 {
		t.Fatalf("-events: exit %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "sd_service_add") {
		t.Errorf("-events dump has no sd_service_add event:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-csv", "-", path}, &out, &out); code != 0 {
		t.Fatalf("-csv: exit %d: %s", code, out.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 2 || !strings.Contains(lines[0], "run") {
		t.Errorf("-csv output:\n%s", out.String())
	}
}

// TestReportBadUsage pins the CLI error paths: missing argument and a
// nonexistent database exit non-zero without panicking.
func TestReportBadUsage(t *testing.T) {
	var out bytes.Buffer
	if code := run(nil, &out, &out); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	out.Reset()
	if code := run([]string{filepath.Join(t.TempDir(), "nope.xcdb")}, &out, &out); code != 1 {
		t.Errorf("missing db: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "error:") {
		t.Errorf("missing db: no error message:\n%s", out.String())
	}
}

// Command excovery-discovery is the fleet registry of the distributed
// deployment (DESIGN.md §14): node hosts register their control endpoint,
// served nodes and region under a TTL lease renewed by heartbeats, and
// masters claim hosts for a campaign under a fencing epoch. The registry
// is soft-state — restart it freely; the fleet view rebuilds from one
// heartbeat interval of re-registrations.
//
// Usage:
//
//	excovery-discovery -listen :8799
//	excovery-discovery -listen :8799 -ttl 10s -obs-addr :9099
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"excovery/internal/discovery"
	"excovery/internal/obs"
)

func main() {
	var (
		listen  = flag.String("listen", ":8799", "XML-RPC listen address")
		ttl     = flag.Duration("ttl", 15*time.Second, "default registration lease for hosts that do not request their own")
		obsAddr = flag.String("obs-addr", "", "serve /metrics, /healthz, /status and pprof on this address (empty disables)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: excovery-discovery [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	reg := obs.NewRegistry()
	r := discovery.NewRegistry(*ttl)
	r.Instrument(reg)
	r.Start()
	defer r.Close()

	if *obsAddr != "" {
		osrv, err := obs.Serve(*obsAddr, reg, func() any {
			return struct {
				Hosts []discovery.Host `json:"hosts"`
				Epoch int64            `json:"fence_epoch"`
			}{r.Snapshot(), r.Epoch()}
		})
		if err != nil {
			fatal(err)
		}
		defer osrv.Close()
		fmt.Printf("excovery-discovery: observability endpoints at http://%s\n", osrv.Addr())
	}

	srv := r.Server()
	srv.Obs = reg
	fmt.Printf("excovery-discovery: registry on %s (default ttl %s)\n", *listen, *ttl)
	if err := http.ListenAndServe(*listen, srv); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

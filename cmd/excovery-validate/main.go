// Command excovery-validate checks an experiment description document and
// prints a summary: factors, levels, processes, platform mapping and the
// size of the generated treatment plan.
//
// Usage:
//
//	excovery-validate description.xml
//	excovery-validate -builtin casestudy
package main

import (
	"flag"
	"fmt"
	"os"

	"excovery/internal/desc"
)

func main() {
	builtin := flag.String("builtin", "", "validate a built-in description: casestudy, oneshot, threeparty, registry-churn")
	dump := flag.String("dump", "", "write the (built-in or parsed) description as XML to this file (- for stdout)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: excovery-validate [-builtin name] [-dump file] [description.xml]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	e, err := loadDescription(*builtin, flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if *dump != "" {
		out := os.Stdout
		var f *os.File
		if *dump != "-" {
			var err error
			f, err = os.Create(*dump)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			out = f
		}
		if err := desc.Encode(e, out); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if f != nil {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *dump)
		}
		return
	}
	if err := desc.Validate(e); err != nil {
		fmt.Fprintln(os.Stderr, "description invalid:")
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	plan, err := desc.GeneratePlan(e)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plan error:", err)
		os.Exit(1)
	}

	fmt.Printf("experiment %q — %s\n", e.Name, e.Comment)
	for _, p := range e.Params {
		fmt.Printf("  param %-20s %s\n", p.Key, p.Value)
	}
	fmt.Printf("  abstract nodes: %v  environment nodes: %v\n", e.AbstractNodes, e.EnvironmentNodes)
	for _, f := range e.Factors {
		fmt.Printf("  factor %-24s type=%-16s usage=%-10s levels=%d\n",
			f.ID, f.Type, f.Usage, len(f.Levels))
	}
	if e.Repl.Count > 0 {
		fmt.Printf("  replication %-18s count=%d\n", e.Repl.ID, e.Repl.Count)
	}
	for _, np := range e.NodeProcesses {
		fmt.Printf("  node process %-12s role=%-4s actions=%d\n", np.Actor, np.Name, len(np.Actions))
	}
	for _, mp := range e.ManipProcesses {
		fmt.Printf("  manipulation process %-6s actions=%d\n", mp.Actor, len(mp.Actions))
	}
	for i, ep := range e.EnvProcesses {
		fmt.Printf("  env process %d %-12q actions=%d\n", i, ep.Name, len(ep.Actions))
	}
	fmt.Printf("  platform: %d actor nodes, %d env nodes\n", len(e.Platform.Actors), len(e.Platform.Env))
	fmt.Printf("  plan: %d treatments × %d replications = %d runs (%s)\n",
		plan.Treatments, max(1, e.Repl.Count), len(plan.Runs), planKind(e))
	fmt.Println("OK")
}

func planKind(e *desc.Experiment) desc.PlanKind {
	if e.PlanKind == "" {
		return desc.PlanOFAT
	}
	return e.PlanKind
}

func loadDescription(builtin, path string) (*desc.Experiment, error) {
	switch builtin {
	case "casestudy":
		return desc.CaseStudy(1000), nil
	case "oneshot":
		return desc.OneShot(30), nil
	case "threeparty":
		return desc.ThreeParty(30, 1000), nil
	case "registry-churn":
		return desc.RegistryChurn(100), nil
	case "":
	default:
		return nil, fmt.Errorf("unknown builtin %q", builtin)
	}
	if path == "" {
		return nil, fmt.Errorf("need a description file or -builtin")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return desc.Parse(f)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
